// Package core implements the samtree, the primary contribution of the
// PlatoD2GL paper (Sec. IV): a non-key-value, B+-tree-like structure holding
// one source vertex's out-neighbors with their edge weights.
//
// A samtree with node capacity c obeys Definition 1 (at most c children per
// node, at least ⌈c/2⌉ for internal nodes, ≥2 children at a non-leaf root,
// all leaves on one level) plus the paper's four constraints:
//
//  1. leaves hold the neighbor IDs, internal nodes hold per-child aggregates;
//  2. leaf ID lists are *unordered* (for O(log n) Fenwick updates) while
//     internal key lists are *ordered* (for O(log c) routing);
//  3. every internal node carries a CSTable over its children's subtree
//     weights, sampled with ITS;
//  4. every leaf carries an FSTable over its neighbor weights, sampled with
//     FTS.
//
// A full leaf is split with the α-Split algorithm (split.go) so the pivot
// doubles as the right sibling's exact routing key. A weighted neighbor
// sample descends the tree with one ITS search per internal level and one
// FTS search at the leaf (Sec. V-C).
package core

import (
	"fmt"
	"math/rand"

	"platod2gl/internal/compress"
	"platod2gl/internal/cstable"
)

// DefaultCapacity is the paper's default samtree node size (2^8, Sec. VII-A).
const DefaultCapacity = 256

// Options configure a samtree.
type Options struct {
	// Capacity is the node capacity c (maximum IDs in a leaf / children in
	// an internal node). Defaults to DefaultCapacity. Minimum 4.
	Capacity int
	// Alpha is the α-Split slackness: how far from the exact median the
	// split pivot may land. 0 (the paper's default) degenerates to exact
	// QuickSelect.
	Alpha int
	// Compress enables CP-IDs dynamic prefix compression of the node ID
	// lists (Sec. VI-A). Disabled reproduces the paper's "w/o CP" ablation.
	Compress bool
	// Counters, if non-nil, receives operation accounting shared across
	// trees (Table V's leaf vs non-leaf update distribution).
	Counters *Counters
	// LeafTable selects the leaf weight structure: LeafFTS (default, the
	// paper's FSTable) or LeafITS (CSTable ablation).
	LeafTable LeafTableKind
	// Split selects the leaf split strategy: SplitAlpha (default, the
	// paper's α-Split) or SplitSort (O(n log n) ablation).
	Split SplitStrategy
}

func (o Options) withDefaults() Options {
	if o.Capacity == 0 {
		o.Capacity = DefaultCapacity
	}
	if o.Capacity < 4 {
		o.Capacity = 4
	}
	if o.Alpha < 0 {
		o.Alpha = 0
	}
	return o
}

// node is a samtree node: a leaf (ids+fs set) or an internal node
// (keys+children+cs set). Using one struct avoids interface dispatch on the
// hot descent path.
type node struct {
	// Leaf fields.
	ids *compress.IDVec // unordered neighbor IDs
	fs  WeightTable     // weight table over the neighbor weights, same order

	// Internal fields.
	keys     *compress.IDVec  // keys.Get(i) = smallest ID in children[i]'s subtree; ascending
	children []*node          //
	cs       *cstable.CSTable // cs.Weight(i) = total weight of children[i]'s subtree
	counts   []int32          // counts[i] = neighbor count in children[i]'s subtree
}

func (n *node) isLeaf() bool { return n.fs != nil }

// total returns the node's subtree weight.
func (n *node) total() float64 {
	if n.isLeaf() {
		return n.fs.Total()
	}
	return n.cs.Total()
}

// count returns the number of entries in this node (IDs for a leaf, children
// for an internal node).
func (n *node) count() int {
	if n.isLeaf() {
		return n.ids.Len()
	}
	return len(n.children)
}

// subtreeCount returns the number of neighbors stored under n.
func (n *node) subtreeCount() int32 {
	if n.isLeaf() {
		return int32(n.ids.Len())
	}
	var c int32
	for _, v := range n.counts {
		c += v
	}
	return c
}

// Tree is a samtree for a single source vertex. Not safe for concurrent
// mutation; the batch layer (internal/palm) and the storage layer serialize
// writers per tree.
type Tree struct {
	root   *node
	size   int
	height int
	opt    Options
}

// NewTree returns an empty samtree.
func NewTree(opt Options) *Tree {
	opt = opt.withDefaults()
	return &Tree{root: newLeaf(opt), height: 1, opt: opt}
}

func newLeaf(opt Options) *node {
	var ids *compress.IDVec
	if opt.Compress {
		ids = compress.NewIDVec(nil)
	} else {
		ids = compress.NewUncompressed(nil)
	}
	return &node{ids: ids, fs: newLeafTable(opt.LeafTable, nil)}
}

func newLeafFrom(opt Options, ids []uint64, weights []float64) *node {
	var iv *compress.IDVec
	if opt.Compress {
		iv = compress.NewIDVec(ids)
	} else {
		iv = compress.NewUncompressed(ids)
	}
	return &node{ids: iv, fs: newLeafTable(opt.LeafTable, weights)}
}

func newInner(opt Options, keys []uint64, children []*node, weights []float64) *node {
	var kv *compress.IDVec
	if opt.Compress {
		kv = compress.NewIDVec(keys)
	} else {
		kv = compress.NewUncompressed(keys)
	}
	counts := make([]int32, len(children))
	for i, c := range children {
		counts[i] = c.subtreeCount()
	}
	return &node{keys: kv, children: children, cs: cstable.New(weights), counts: counts}
}

// Len returns the number of neighbors stored.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf).
func (t *Tree) Height() int { return t.height }

// TotalWeight returns the sum of all edge weights.
func (t *Tree) TotalWeight() float64 { return t.root.total() }

// Options returns the tree's configuration.
func (t *Tree) Options() Options { return t.opt }

// pathEntry records one internal node crossed during descent and the child
// index taken.
type pathEntry struct {
	n  *node
	ci int
}

// route returns the child index for id in internal node n: the largest j
// with keys[j] <= id, clamped to 0.
func route(n *node, id uint64) int {
	// Binary search for the first key > id.
	lo, hi := 0, n.keys.Len()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys.Get(mid) > id {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// descend walks from the root to the leaf responsible for id, recording the
// internal path.
func (t *Tree) descend(id uint64, path []pathEntry) (*node, []pathEntry) {
	n := t.root
	for !n.isLeaf() {
		ci := route(n, id)
		path = append(path, pathEntry{n, ci})
		n = n.children[ci]
	}
	return n, path
}

// Insert adds neighbor id with edge weight w, or updates its weight if
// already present (Algorithm 2). Returns true if the neighbor was new.
func (t *Tree) Insert(id uint64, w float64) bool {
	var pathBuf [8]pathEntry
	// Descend while maintaining the key invariant keys[j] <= min(child j):
	// an id below keys[0] is a new subtree minimum (it cannot already be
	// stored), so lower keys[0] to keep future split pivots strictly above
	// their left neighbor key.
	leaf := t.root
	path := pathBuf[:0]
	for !leaf.isLeaf() {
		if id < leaf.keys.Get(0) {
			leaf.keys.Set(0, id)
		}
		ci := route(leaf, id)
		path = append(path, pathEntry{leaf, ci})
		leaf = leaf.children[ci]
	}
	// Table V accounting: one leaf update per operation; non-leaf updates
	// are counted only for structural internal-node modifications (splits,
	// merges) — ancestor CSTable weight propagation rides along the single
	// update and is not a separate operation.
	t.opt.Counters.leaf(1)

	if idx := leaf.ids.IndexOf(id); idx >= 0 {
		delta := w - leaf.fs.Weight(idx)
		leaf.fs.Update(idx, w)
		propagate(path, delta)
		return false
	}
	leaf.ids.Append(id)
	leaf.fs.Append(w)
	t.size++
	propagate(path, w)
	propagateCount(path, 1)
	if leaf.ids.Len() > t.opt.Capacity {
		t.splitLeaf(leaf, path)
	}
	return true
}

// UpdateWeight sets the weight of an existing neighbor. Returns false if id
// is not a neighbor.
func (t *Tree) UpdateWeight(id uint64, w float64) bool {
	var pathBuf [8]pathEntry
	leaf, path := t.descend(id, pathBuf[:0])
	idx := leaf.ids.IndexOf(id)
	if idx < 0 {
		return false
	}
	t.opt.Counters.leaf(1)
	delta := w - leaf.fs.Weight(idx)
	leaf.fs.Update(idx, w)
	propagate(path, delta)
	return true
}

// propagate adds delta to every ancestor CSTable entry along the path.
func propagate(path []pathEntry, delta float64) {
	if delta == 0 {
		return
	}
	for i := len(path) - 1; i >= 0; i-- {
		path[i].n.cs.AddFrom(path[i].ci, delta)
	}
}

// propagateCount adjusts the per-child neighbor counts along the path.
func propagateCount(path []pathEntry, delta int32) {
	for i := len(path) - 1; i >= 0; i-- {
		path[i].n.counts[path[i].ci] += delta
	}
}

// splitLeaf splits an over-full leaf with α-Split and pushes the new sibling
// into the parent, cascading internal splits as needed.
func (t *Tree) splitLeaf(leaf *node, path []pathEntry) {
	t.opt.Counters.splits(1)
	ids := leaf.ids.All()
	weights := leaf.fs.Weights()
	var k int
	if t.opt.Split == SplitSort {
		k = sortSplit(ids, weights)
	} else {
		k = alphaSplit(ids, weights, t.opt.Alpha)
	}
	left := newLeafFrom(t.opt, ids[:k], weights[:k])
	right := newLeafFrom(t.opt, ids[k:], weights[k:])
	// The pivot sits first in the right half, so its value is the exact
	// smallest ID of the right sibling.
	rightKey := ids[k]
	t.replaceChild(left, right, rightKey, path)
}

// replaceChild swaps the node at the end of path for left+right in its
// parent, creating a new root if it was the root, and cascading internal
// splits.
func (t *Tree) replaceChild(left, right *node, rightKey uint64, path []pathEntry) {
	if len(path) == 0 {
		// old was the root: grow the tree by one level.
		leftKey := minKeyOf(left)
		t.root = newInner(t.opt, []uint64{leftKey, rightKey},
			[]*node{left, right}, []float64{left.total(), right.total()})
		t.height++
		return
	}
	p := path[len(path)-1]
	parent, ci := p.n, p.ci
	t.opt.Counters.nonLeaf(1)
	parent.children[ci] = left
	parent.cs.Update(ci, left.total())
	parent.children = append(parent.children, nil)
	copy(parent.children[ci+2:], parent.children[ci+1:])
	parent.children[ci+1] = right
	parent.keys.InsertAt(ci+1, rightKey)
	parent.cs.Insert(ci+1, right.total())
	parent.counts = append(parent.counts, 0)
	copy(parent.counts[ci+2:], parent.counts[ci+1:])
	parent.counts[ci] = left.subtreeCount()
	parent.counts[ci+1] = right.subtreeCount()
	if len(parent.children) > t.opt.Capacity {
		t.splitInner(parent, path[:len(path)-1])
	}
}

// splitInner splits an over-full internal node at its exact median — the key
// list is ordered, so the median is positional (Sec. IV-C).
func (t *Tree) splitInner(n *node, path []pathEntry) {
	t.opt.Counters.splits(1)
	t.opt.Counters.nonLeaf(1)
	m := len(n.children) / 2
	keys := n.keys.All()
	weights := n.cs.Weights()
	leftChildren := make([]*node, m)
	copy(leftChildren, n.children[:m])
	rightChildren := make([]*node, len(n.children)-m)
	copy(rightChildren, n.children[m:])
	left := newInner(t.opt, keys[:m], leftChildren, weights[:m])
	right := newInner(t.opt, keys[m:], rightChildren, weights[m:])
	t.replaceChild(left, right, keys[m], path)
}

// minKeyOf returns the routing key recorded for a node's subtree: its first
// key (internal) or — leaves being unordered — the smallest stored ID.
func minKeyOf(n *node) uint64 {
	if !n.isLeaf() {
		return n.keys.Get(0)
	}
	if n.ids.Len() == 0 {
		return 0
	}
	min := n.ids.Get(0)
	for i := 1; i < n.ids.Len(); i++ {
		if v := n.ids.Get(i); v < min {
			min = v
		}
	}
	return min
}

// Weight returns the edge weight of neighbor id.
func (t *Tree) Weight(id uint64) (float64, bool) {
	n := t.root
	for !n.isLeaf() {
		n = n.children[route(n, id)]
	}
	idx := n.ids.IndexOf(id)
	if idx < 0 {
		return 0, false
	}
	return n.fs.Weight(idx), true
}

// Contains reports whether id is a stored neighbor.
func (t *Tree) Contains(id uint64) bool {
	_, ok := t.Weight(id)
	return ok
}

// Delete removes neighbor id. Returns false if absent. Under-full nodes are
// merged with their nearest sibling, or rebalanced when the union would
// overflow (Sec. IV-D).
func (t *Tree) Delete(id uint64) bool {
	var pathBuf [8]pathEntry
	leaf, path := t.descend(id, pathBuf[:0])
	idx := leaf.ids.IndexOf(id)
	if idx < 0 {
		return false
	}
	t.opt.Counters.leaf(1)
	w := leaf.fs.Weight(idx)
	last := leaf.ids.Len() - 1
	leaf.ids.Swap(idx, last)
	leaf.ids.RemoveLast()
	leaf.fs.Delete(idx)
	t.size--
	propagate(path, -w)
	propagateCount(path, -1)
	t.fixUnderflow(leaf, path)
	return true
}

// fixUnderflow repairs an under-full node bottom-up after a deletion.
func (t *Tree) fixUnderflow(n *node, path []pathEntry) {
	minFill := t.opt.Capacity / 2
	for {
		if len(path) == 0 {
			// Root: collapse if it is an internal node with one child.
			if !n.isLeaf() && len(n.children) == 1 {
				t.root = n.children[0]
				t.height--
			}
			return
		}
		if n.count() >= minFill {
			return
		}
		p := path[len(path)-1]
		parent, ci := p.n, p.ci
		t.opt.Counters.merges(1)
		t.opt.Counters.nonLeaf(1)
		// Merge with the nearest sibling; prefer the left one.
		li := ci - 1
		if ci == 0 {
			li = 0 // merge children[0] with children[1]
		}
		t.mergeChildren(parent, li)
		n = parent
		path = path[:len(path)-1]
	}
}

// mergeChildren combines parent.children[li] and parent.children[li+1]. If
// the union exceeds capacity the entries are redistributed between the two
// instead (a borrow), otherwise the right child is removed.
func (t *Tree) mergeChildren(parent *node, li int) {
	left, right := parent.children[li], parent.children[li+1]
	if left.isLeaf() {
		ids := append(left.ids.All(), right.ids.All()...)
		weights := append(left.fs.Weights(), right.fs.Weights()...)
		if len(ids) > t.opt.Capacity {
			// Redistribute around an approximate median.
			k := alphaSplit(ids, weights, t.opt.Alpha)
			nl := newLeafFrom(t.opt, ids[:k], weights[:k])
			nr := newLeafFrom(t.opt, ids[k:], weights[k:])
			parent.children[li], parent.children[li+1] = nl, nr
			parent.keys.Set(li+1, ids[k])
			parent.cs.Update(li, nl.total())
			parent.cs.Update(li+1, nr.total())
			parent.counts[li] = nl.subtreeCount()
			parent.counts[li+1] = nr.subtreeCount()
			return
		}
		merged := newLeafFrom(t.opt, ids, weights)
		t.removeRight(parent, li, merged)
		return
	}
	keys := append(left.keys.All(), right.keys.All()...)
	children := append(append([]*node(nil), left.children...), right.children...)
	weights := append(left.cs.Weights(), right.cs.Weights()...)
	if len(children) > t.opt.Capacity {
		m := len(children) / 2
		// Each node must own its children array: sharing one backing array
		// lets a later append into the left node clobber the right's head.
		lc := make([]*node, m)
		copy(lc, children[:m])
		rc := make([]*node, len(children)-m)
		copy(rc, children[m:])
		nl := newInner(t.opt, keys[:m], lc, weights[:m])
		nr := newInner(t.opt, keys[m:], rc, weights[m:])
		parent.children[li], parent.children[li+1] = nl, nr
		parent.keys.Set(li+1, keys[m])
		parent.cs.Update(li, nl.total())
		parent.cs.Update(li+1, nr.total())
		parent.counts[li] = nl.subtreeCount()
		parent.counts[li+1] = nr.subtreeCount()
		return
	}
	merged := newInner(t.opt, keys, children, weights)
	t.removeRight(parent, li, merged)
}

// removeRight installs merged at position li and removes the entry li+1.
func (t *Tree) removeRight(parent *node, li int, merged *node) {
	parent.children[li] = merged
	parent.cs.Update(li, merged.total())
	parent.counts[li] = merged.subtreeCount()
	copy(parent.children[li+1:], parent.children[li+2:])
	parent.children = parent.children[:len(parent.children)-1]
	parent.keys.RemoveAt(li + 1)
	parent.cs.Delete(li + 1)
	copy(parent.counts[li+1:], parent.counts[li+2:])
	parent.counts = parent.counts[:len(parent.counts)-1]
}

// SampleOne draws one neighbor with probability proportional to its edge
// weight: one ITS search per internal level, one FTS search at the leaf
// (Sec. V-C). Returns false on an empty tree.
func (t *Tree) SampleOne(rng *rand.Rand) (uint64, bool) {
	if t.size == 0 {
		return 0, false
	}
	r := rng.Float64() * t.root.total()
	n := t.root
	for !n.isLeaf() {
		i := n.cs.Sample(r)
		if i > 0 {
			r -= n.cs.Prefix(i - 1)
		}
		n = n.children[i]
	}
	idx := n.fs.Sample(r)
	return n.ids.Get(idx), true
}

// SampleN draws k neighbors with replacement into dst (allocated if nil).
func (t *Tree) SampleN(rng *rand.Rand, k int, dst []uint64) []uint64 {
	if dst == nil {
		dst = make([]uint64, 0, k)
	}
	for i := 0; i < k; i++ {
		if v, ok := t.SampleOne(rng); ok {
			dst = append(dst, v)
		}
	}
	return dst
}

// ForEach visits every (neighbor, weight) pair until fn returns false.
// Within a leaf the visit order is the leaf's physical (unordered) order.
func (t *Tree) ForEach(fn func(id uint64, w float64) bool) {
	t.forEachNode(t.root, fn)
}

func (t *Tree) forEachNode(n *node, fn func(id uint64, w float64) bool) bool {
	if n.isLeaf() {
		for i := 0; i < n.ids.Len(); i++ {
			if !fn(n.ids.Get(i), n.fs.Weight(i)) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !t.forEachNode(c, fn) {
			return false
		}
	}
	return true
}

// Neighbors returns all neighbor IDs and weights (order unspecified).
func (t *Tree) Neighbors() ([]uint64, []float64) {
	ids := make([]uint64, 0, t.size)
	weights := make([]float64, 0, t.size)
	t.ForEach(func(id uint64, w float64) bool {
		ids = append(ids, id)
		weights = append(weights, w)
		return true
	})
	return ids, weights
}

// nodeOverhead approximates the fixed per-node struct cost (three pointers,
// a slice header, plus allocator slack).
const nodeOverhead = 64

// MemoryBytes returns the structural footprint of the whole tree.
func (t *Tree) MemoryBytes() int64 {
	return t.memNode(t.root)
}

func (t *Tree) memNode(n *node) int64 {
	if n.isLeaf() {
		return nodeOverhead + n.ids.MemoryBytes() + n.fs.MemoryBytes()
	}
	total := int64(nodeOverhead) + n.keys.MemoryBytes() + n.cs.MemoryBytes() +
		int64(24+8*cap(n.children)) + int64(24+4*cap(n.counts))
	for _, c := range n.children {
		total += t.memNode(c)
	}
	return total
}

// CheckInvariants validates the full samtree structure; tests call it after
// mutation storms. It verifies Definition 1, the ordering constraints, the
// routing keys, and that every aggregate (CSTable entry, subtree weight,
// size) is consistent with the leaves.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return fmt.Errorf("nil root")
	}
	seen := make(map[uint64]bool, t.size)
	count, _, err := t.checkNode(t.root, t.height, seen, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size %d but counted %d neighbors", t.size, count)
	}
	return nil
}

// checkNode returns (neighborCount, subtreeWeight, error) and validates the
// subtree rooted at n, which must sit depth levels above the leaves.
func (t *Tree) checkNode(n *node, depth int, seen map[uint64]bool, isRoot bool) (int, float64, error) {
	const eps = 1e-6
	if n.isLeaf() {
		if depth != 1 {
			return 0, 0, fmt.Errorf("leaf at depth %d (height %d): leaves must share one level", depth, t.height)
		}
		if n.ids.Len() != n.fs.Len() {
			return 0, 0, fmt.Errorf("leaf ids/fs length mismatch: %d vs %d", n.ids.Len(), n.fs.Len())
		}
		if !isRoot && n.ids.Len() > t.opt.Capacity {
			return 0, 0, fmt.Errorf("leaf overflow: %d > %d", n.ids.Len(), t.opt.Capacity)
		}
		for i := 0; i < n.ids.Len(); i++ {
			id := n.ids.Get(i)
			if seen[id] {
				return 0, 0, fmt.Errorf("duplicate neighbor %d", id)
			}
			seen[id] = true
			if w := n.fs.Weight(i); w < -eps {
				return 0, 0, fmt.Errorf("negative weight %v for neighbor %d", w, id)
			}
		}
		return n.ids.Len(), n.fs.Total(), nil
	}
	nc := len(n.children)
	if nc != n.keys.Len() || nc != n.cs.Len() || nc != len(n.counts) {
		return 0, 0, fmt.Errorf("internal arity mismatch: children=%d keys=%d cs=%d counts=%d",
			nc, n.keys.Len(), n.cs.Len(), len(n.counts))
	}
	if nc > t.opt.Capacity {
		return 0, 0, fmt.Errorf("internal overflow: %d > %d", nc, t.opt.Capacity)
	}
	if isRoot && nc < 2 {
		return 0, 0, fmt.Errorf("internal root with %d children", nc)
	}
	count := 0
	total := 0.0
	for i := 0; i < nc; i++ {
		if i > 0 && n.keys.Get(i) <= n.keys.Get(i-1) {
			return 0, 0, fmt.Errorf("keys not strictly increasing at %d: %d <= %d", i, n.keys.Get(i), n.keys.Get(i-1))
		}
		c, w, err := t.checkNode(n.children[i], depth-1, seen, false)
		if err != nil {
			return 0, 0, err
		}
		if diff := w - n.cs.Weight(i); diff > eps || diff < -eps {
			return 0, 0, fmt.Errorf("cs[%d] = %v but subtree weight is %v", i, n.cs.Weight(i), w)
		}
		if int(n.counts[i]) != c {
			return 0, 0, fmt.Errorf("counts[%d] = %d but subtree holds %d neighbors", i, n.counts[i], c)
		}
		// All IDs in child i must be >= keys[i] (keys may lag low after the
		// subtree minimum is deleted, never high) and < keys[i+1].
		lo := n.keys.Get(i)
		hi := uint64(0)
		bounded := i+1 < nc
		if bounded {
			hi = n.keys.Get(i + 1)
		}
		bad := false
		eachID(n.children[i], func(id uint64) {
			if id < lo {
				bad = true
			}
			if bounded && id >= hi {
				bad = true
			}
		})
		if bad {
			return 0, 0, fmt.Errorf("child %d violates key range [%d,%d)", i, lo, hi)
		}
		count += c
		total += w
	}
	return count, total, nil
}

func eachID(n *node, fn func(uint64)) {
	if n.isLeaf() {
		for i := 0; i < n.ids.Len(); i++ {
			fn(n.ids.Get(i))
		}
		return
	}
	for _, c := range n.children {
		eachID(c, fn)
	}
}
