package core

import "sort"

// This file implements intra-tree batch application — the per-tree half of
// the PALM-style mechanism (Appendix B): a batch of operations destined for
// one samtree is sorted by neighbor ID, so consecutive operations tend to
// land in the same leaf and the root-to-leaf search can be reused across
// them. The cross-tree half (sort, group, partition across workers) lives
// in internal/palm.

// OpKind enumerates tree-level operations.
type OpKind uint8

const (
	// OpInsert inserts a neighbor or updates its weight if present.
	OpInsert OpKind = iota
	// OpDelete removes a neighbor.
	OpDelete
	// OpUpdate changes an existing neighbor's weight (no-op if absent).
	OpUpdate
)

// Op is one batched tree operation.
type Op struct {
	Kind   OpKind
	ID     uint64
	Weight float64
}

// ApplyBatch applies ops to the tree, reporting how many neighbors were
// added and removed. Operations are processed in ID order (ties keep input
// order, so multiple updates to one neighbor apply in sequence); the ops
// slice is reordered in place.
//
// The descent for an operation is skipped entirely when the previous
// operation resolved to a leaf whose key range still covers the next ID and
// no structural change (split / merge) has occurred since — on sorted
// batches this collapses most searches to O(1).
func (t *Tree) ApplyBatch(ops []Op) (added, removed int) {
	if len(ops) == 0 {
		return 0, 0
	}
	// Groups coming from internal/palm arrive pre-sorted by destination ID;
	// detect that in O(n) rather than re-sorting.
	sorted := true
	for i := 1; i < len(ops); i++ {
		if ops[i].ID < ops[i-1].ID {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.SliceStable(ops, func(i, j int) bool { return ops[i].ID < ops[j].ID })
	}

	var pathBuf [8]pathEntry
	var (
		leaf    *node
		path    []pathEntry
		lowKey  uint64
		highKey uint64
		bounded bool // highKey valid
		valid   bool // cached leaf usable
	)
	for i := range ops {
		op := &ops[i]
		if !valid || op.ID < lowKey || (bounded && op.ID >= highKey) {
			leaf, path, lowKey, highKey, bounded = t.descendBounded(op.ID, pathBuf[:0])
			valid = true
		}
		switch op.Kind {
		case OpInsert:
			t.opt.Counters.leaf(1)
			if idx := leaf.ids.IndexOf(op.ID); idx >= 0 {
				delta := op.Weight - leaf.fs.Weight(idx)
				leaf.fs.Update(idx, op.Weight)
				propagate(path, delta)
				continue
			}
			// New subtree minimum: maintain the keys[0] invariant (see
			// Insert). The cached bounds already guarantee op.ID >= lowKey
			// when a leaf is reused, so this only triggers on fresh
			// descents, which descendBounded handled.
			leaf.ids.Append(op.ID)
			leaf.fs.Append(op.Weight)
			t.size++
			added++
			propagate(path, op.Weight)
			propagateCount(path, 1)
			if leaf.ids.Len() > t.opt.Capacity {
				t.splitLeaf(leaf, path)
				valid = false
			}
		case OpDelete:
			idx := leaf.ids.IndexOf(op.ID)
			if idx < 0 {
				continue
			}
			t.opt.Counters.leaf(1)
			w := leaf.fs.Weight(idx)
			last := leaf.ids.Len() - 1
			leaf.ids.Swap(idx, last)
			leaf.ids.RemoveLast()
			leaf.fs.Delete(idx)
			t.size--
			removed++
			propagate(path, -w)
			propagateCount(path, -1)
			if leaf.count() < t.opt.Capacity/2 && len(path) > 0 {
				t.fixUnderflow(leaf, path)
				valid = false
			}
		case OpUpdate:
			idx := leaf.ids.IndexOf(op.ID)
			if idx < 0 {
				continue
			}
			t.opt.Counters.leaf(1)
			delta := op.Weight - leaf.fs.Weight(idx)
			leaf.fs.Update(idx, op.Weight)
			propagate(path, delta)
		}
	}
	return added, removed
}

// descendBounded walks to the leaf responsible for id like Insert's descent
// (maintaining the keys[0] invariant), additionally returning the leaf's
// covering key range [low, high) for descent reuse. bounded reports whether
// high is finite.
func (t *Tree) descendBounded(id uint64, path []pathEntry) (leaf *node, outPath []pathEntry, low, high uint64, bounded bool) {
	n := t.root
	low = 0
	for !n.isLeaf() {
		if id < n.keys.Get(0) {
			n.keys.Set(0, id)
		}
		ci := route(n, id)
		if k := n.keys.Get(ci); k > low {
			low = k
		}
		if ci+1 < n.keys.Len() {
			h := n.keys.Get(ci + 1)
			if !bounded || h < high {
				high = h
				bounded = true
			}
		}
		path = append(path, pathEntry{n, ci})
		n = n.children[ci]
	}
	return n, path, low, high, bounded
}
