package core

import "sync/atomic"

// Counters accumulates update-operation accounting across many samtrees.
// The paper's Table V reports the share of topology-update work landing on
// leaf vs non-leaf nodes: every insert/update/delete touches exactly one
// leaf's FSTable, while non-leaf touches (CSTable adjustments along the
// descent path, plus structural split/merge modifications) only occur in
// trees taller than one level. All methods are safe for concurrent use and
// tolerate a nil receiver.
type Counters struct {
	// LeafUpdates counts FSTable modifications (one per update op).
	LeafUpdates atomic.Int64
	// NonLeafUpdates counts internal nodes structurally modified by splits
	// and merges. Ancestor CSTable weight propagation is part of the one
	// triggering update, not a separate operation (Table V counts
	// operations, and >98% of them never change an internal node).
	NonLeafUpdates atomic.Int64
	// SplitCount counts node splits (leaf and internal).
	SplitCount atomic.Int64
	// MergeCount counts node merges/redistributions after deletions.
	MergeCount atomic.Int64
}

func (c *Counters) leaf(n int64) {
	if c != nil {
		c.LeafUpdates.Add(n)
	}
}

func (c *Counters) nonLeaf(n int64) {
	if c != nil && n != 0 {
		c.NonLeafUpdates.Add(n)
	}
}

func (c *Counters) splits(n int64) {
	if c != nil {
		c.SplitCount.Add(n)
	}
}

func (c *Counters) merges(n int64) {
	if c != nil {
		c.MergeCount.Add(n)
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.LeafUpdates.Store(0)
	c.NonLeafUpdates.Store(0)
	c.SplitCount.Store(0)
	c.MergeCount.Store(0)
}

// LeafShare returns the fraction of update operations that touched only
// leaf structures — the quantity Table V tabulates per node capacity.
func (c *Counters) LeafShare() float64 {
	l := c.LeafUpdates.Load()
	nl := c.NonLeafUpdates.Load()
	if l+nl == 0 {
		return 0
	}
	return float64(l) / float64(l+nl)
}
