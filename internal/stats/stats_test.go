package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestQuantile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.5, 3}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(vals, c.q); got != c.want {
			t.Errorf("Quantile(%.1f) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Error("Quantile mutated input")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 100, -5} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 100 {
		t.Fatalf("Max = %d", h.Max())
	}
	// 0 and -5 (clamped) land in bucket 0; 1,2 in bucket 1; 3 in bucket 2.
	if h.Bucket(0) != 2 || h.Bucket(1) != 2 || h.Bucket(2) != 1 {
		t.Fatalf("buckets: %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(2))
	}
	if h.Bucket(-1) != 0 || h.Bucket(99) != 0 {
		t.Fatal("out-of-range buckets not zero")
	}
	if !strings.Contains(h.String(), "n=6") {
		t.Fatalf("String = %q", h.String())
	}
}

func TestHistogramQuantileApprox(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 1000; i++ {
		h.Add(i)
	}
	// Median of 0..999 is ~500; the approx returns its bucket lower bound
	// (2^8-1 = 255 or 2^9-1 = 511 depending on rank bucket).
	med := h.QuantileApprox(0.5)
	if med < 255 || med > 511 {
		t.Fatalf("median approx = %d", med)
	}
	if h.QuantileApprox(1.0) > h.Max() {
		t.Fatal("q=1 above max")
	}
	var empty Histogram
	if empty.QuantileApprox(0.5) != 0 {
		t.Fatal("empty quantile nonzero")
	}
}

func TestHistogramMeanMatchesDirect(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	var sum, n int64
	for i := 0; i < 10000; i++ {
		v := int64(rng.Intn(1 << 20))
		h.Add(v)
		sum += v
		n++
	}
	want := float64(sum) / float64(n)
	if got := h.Mean(); got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	prop := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		return Quantile(raw, 0.1) <= Quantile(raw, 0.5) &&
			Quantile(raw, 0.5) <= Quantile(raw, 0.9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
