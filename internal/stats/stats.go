// Package stats provides the small numerical summaries the benchmark
// harness and the load generator report: quantiles, log-2 histograms for
// degree distributions, and mean/max accumulation.
package stats

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Quantile returns the q-quantile (0 <= q <= 1) of values using nearest-rank
// on a sorted copy. Returns 0 for empty input.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Histogram is a log-2 bucketed histogram of non-negative integers: bucket
// b counts values v with 2^b <= v+1 < 2^(b+1) (so 0 lands in bucket 0).
type Histogram struct {
	buckets [64]int64
	count   int64
	sum     int64
	max     int64
}

// Add records one value.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v+1)) - 1
	h.buckets[b]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the mean recorded value.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest recorded value.
func (h *Histogram) Max() int64 { return h.max }

// Bucket returns the count in log-2 bucket b.
func (h *Histogram) Bucket(b int) int64 {
	if b < 0 || b >= len(h.buckets) {
		return 0
	}
	return h.buckets[b]
}

// QuantileApprox returns an approximate q-quantile from the buckets (the
// lower bound of the bucket containing the rank).
func (h *Histogram) QuantileApprox(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count-1))
	var seen int64
	for b, c := range h.buckets {
		seen += c
		if seen > rank {
			return (1 << b) - 1
		}
	}
	return h.max
}

// String renders the non-empty buckets as "[lo,hi): count" lines.
func (h *Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%.1f max=%d", h.count, h.Mean(), h.max)
	for b, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := int64(1)<<b - 1
		hi := int64(1)<<(b+1) - 1
		fmt.Fprintf(&sb, "\n  [%d,%d): %d", lo, hi, c)
	}
	return sb.String()
}
