package view_test

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"platod2gl/internal/graph"
	"platod2gl/internal/view"
)

// flakyView scripts failures: each method fails while its remaining fail
// budget is positive, then succeeds with recognizable data.
type flakyView struct {
	failSample   int
	failFeatures int
	calls        atomic.Int64
	err          error
	pos          atomic.Int64 // sampleCursor, for the helper test
}

func (f *flakyView) SampleNeighbors(seeds []graph.VertexID, et graph.EdgeType, fanout int) ([]graph.VertexID, error) {
	f.calls.Add(1)
	if f.failSample > 0 {
		f.failSample--
		return nil, f.err
	}
	out := make([]graph.VertexID, len(seeds)*fanout)
	for i := range out {
		out[i] = graph.VertexID(1000 + i)
	}
	return out, nil
}

func (f *flakyView) SampleSubgraph(seeds []graph.VertexID, path graph.MetaPath, fanouts []int) ([][]graph.VertexID, error) {
	f.calls.Add(1)
	if f.failSample > 0 {
		f.failSample--
		return nil, f.err
	}
	layers := make([][]graph.VertexID, len(fanouts))
	frontier := len(seeds)
	for i, fo := range fanouts {
		layers[i] = make([]graph.VertexID, frontier*fo)
		frontier *= fo
	}
	return layers, nil
}

func (f *flakyView) Degrees(nodes []graph.VertexID, et graph.EdgeType) ([]int, error) {
	return make([]int, len(nodes)), nil
}

func (f *flakyView) Features(nodes []graph.VertexID, dim int) ([]float32, error) {
	f.calls.Add(1)
	if f.failFeatures > 0 {
		f.failFeatures--
		return nil, f.err
	}
	return make([]float32, len(nodes)*dim), nil
}

func (f *flakyView) Labels(nodes []graph.VertexID) ([]int32, error) {
	return make([]int32, len(nodes)), nil
}

func (f *flakyView) Sources(et graph.EdgeType) ([]graph.VertexID, error) {
	return nil, nil
}

func (f *flakyView) SamplePos() int64       { return f.pos.Load() }
func (f *flakyView) SetSamplePos(pos int64) { f.pos.Store(pos) }

func noSleep(time.Duration) {}

func TestResilientRetriesTransientErrors(t *testing.T) {
	fv := &flakyView{failSample: 2, err: errors.New("shard flapping")}
	var m view.Metrics
	rv := view.NewResilient(fv, view.ResilientConfig{Attempts: 4, Metrics: &m, Sleep: noSleep})
	seeds := []graph.VertexID{1, 2, 3}
	out, err := rv.SampleNeighbors(seeds, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 15 || out[0] != 1000 {
		t.Fatalf("retried call returned wrong data: %v", out[:3])
	}
	if s := m.Snapshot(); s.Retries != 2 || s.Exhausted != 0 || s.Degraded != 0 {
		t.Fatalf("metrics: %s", s)
	}
}

func TestResilientExhaustionPropagatesWithoutDegrade(t *testing.T) {
	boom := errors.New("shard down hard")
	fv := &flakyView{failSample: 100, err: boom}
	var m view.Metrics
	rv := view.NewResilient(fv, view.ResilientConfig{Attempts: 3, Metrics: &m, Sleep: noSleep})
	_, err := rv.SampleSubgraph([]graph.VertexID{1}, graph.MetaPath{0, 0}, []int{2, 2})
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped %v, got %v", boom, err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error does not report attempts: %v", err)
	}
	if s := m.Snapshot(); s.Retries != 2 || s.Exhausted != 1 {
		t.Fatalf("metrics: %s", s)
	}
}

func TestResilientDegradesSamplingToSelfLoops(t *testing.T) {
	fv := &flakyView{failSample: 100, err: errors.New("gone")}
	var m view.Metrics
	rv := view.NewResilient(fv, view.ResilientConfig{Attempts: 2, DegradeSampling: true, Metrics: &m, Sleep: noSleep})

	seeds := []graph.VertexID{7, 8}
	hop, err := rv.SampleNeighbors(seeds, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.VertexID{7, 7, 7, 8, 8, 8}
	for i := range want {
		if hop[i] != want[i] {
			t.Fatalf("degraded neighbors = %v, want %v", hop, want)
		}
	}

	layers, err := rv.SampleSubgraph(seeds, graph.MetaPath{0, 0}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 2 || len(layers[0]) != 4 || len(layers[1]) != 8 {
		t.Fatalf("degraded subgraph shape: %d layers, %d/%d nodes", len(layers), len(layers[0]), len(layers[1]))
	}
	// Layer 0 repeats the seeds; layer 1 repeats layer 0 — dense self-loops
	// all the way down, so tensor assembly proceeds unchanged.
	if layers[0][0] != 7 || layers[0][1] != 7 || layers[0][2] != 8 {
		t.Fatalf("degraded layer 0 = %v", layers[0])
	}
	if layers[1][0] != 7 || layers[1][7] != 8 {
		t.Fatalf("degraded layer 1 = %v", layers[1])
	}
	if s := m.Snapshot(); s.Degraded != 2 || s.Exhausted != 2 {
		t.Fatalf("metrics: %s", s)
	}
}

// TestResilientFeaturesNeverDegrade: attribute errors propagate even with
// degradation on — fabricated features would silently poison training.
func TestResilientFeaturesNeverDegrade(t *testing.T) {
	boom := errors.New("kv down")
	fv := &flakyView{failFeatures: 100, err: boom}
	rv := view.NewResilient(fv, view.ResilientConfig{Attempts: 2, DegradeSampling: true, Sleep: noSleep})
	if _, err := rv.Features([]graph.VertexID{1}, 4); !errors.Is(err, boom) {
		t.Fatalf("features error swallowed: %v", err)
	}
}

// TestResilientPermanentErrorFailsFast: a Transient classifier returning
// false must short-circuit the retry loop.
func TestResilientPermanentErrorFailsFast(t *testing.T) {
	boom := errors.New("bad request")
	fv := &flakyView{failFeatures: 100, err: boom}
	var m view.Metrics
	rv := view.NewResilient(fv, view.ResilientConfig{
		Attempts:  5,
		Metrics:   &m,
		Sleep:     func(time.Duration) { t.Fatal("slept before a permanent error") },
		Transient: func(error) bool { return false },
	})
	if _, err := rv.Features([]graph.VertexID{1}, 4); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if got := fv.calls.Load(); got != 1 {
		t.Fatalf("permanent error retried: %d calls", got)
	}
	if s := m.Snapshot(); s.Permanent != 1 || s.Retries != 0 {
		t.Fatalf("metrics: %s", s)
	}
}

// TestResilientBackoffCapped verifies the exponential schedule and its cap.
func TestResilientBackoffCapped(t *testing.T) {
	fv := &flakyView{failSample: 100, err: errors.New("down")}
	var delays []time.Duration
	rv := view.NewResilient(fv, view.ResilientConfig{
		Attempts:   5,
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 25 * time.Millisecond,
		Sleep:      func(d time.Duration) { delays = append(delays, d) },
	})
	rv.SampleNeighbors([]graph.VertexID{1}, 0, 2)
	want := []time.Duration{10, 20, 25, 25}
	for i := range want {
		want[i] *= time.Millisecond
	}
	if len(delays) != len(want) {
		t.Fatalf("delays %v, want %v", delays, want)
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delay %d = %s, want %s", i, delays[i], want[i])
		}
	}
}

// TestSampleCursorThroughWrappers: the cursor helpers must reach a cursored
// view through Resilient and WithLatency wrapper chains.
func TestSampleCursorThroughWrappers(t *testing.T) {
	fv := &flakyView{}
	wrapped := view.WithLatency(view.NewResilient(fv, view.ResilientConfig{Sleep: noSleep}), 0)
	view.SetSamplePos(wrapped, 41)
	if got := view.SamplePos(wrapped); got != 41 {
		t.Fatalf("cursor through wrappers = %d, want 41", got)
	}
	if fv.pos.Load() != 41 {
		t.Fatal("cursor did not reach the backing view")
	}
	// Cursor-less views are a harmless no-op.
	plain := &flakyNoCursor{}
	view.SetSamplePos(plain, 9)
	if got := view.SamplePos(plain); got != 0 {
		t.Fatalf("cursor-less view reported %d", got)
	}
}

type flakyNoCursor struct{ flakyView }

// Shadow the cursor methods away by embedding at a different method set:
// flakyNoCursor must NOT satisfy the cursor interface.
func (f *flakyNoCursor) SamplePos()    {}
func (f *flakyNoCursor) SetSamplePos() {}
