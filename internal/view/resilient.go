// Resilient is the training tier's fault-tolerance seam: a GraphView
// wrapper that retries transient storage errors with capped exponential
// backoff and can degrade sampling (self-loop batches) instead of failing,
// so one flapping shard costs sample quality for a few batches rather than
// the epoch. It extends the cluster tier's discipline (PRs 1-2: timeouts,
// breakers, failover) upward into the training loop, in the spirit of
// AliGraph's fault-tolerant workers.
package view

import (
	"expvar"
	"fmt"
	"time"

	"platod2gl/internal/graph"
	"platod2gl/internal/obs"
)

// ResilientConfig tunes a Resilient wrapper. The zero value means 3 total
// attempts, 10ms initial backoff capped at 250ms, no degradation.
type ResilientConfig struct {
	// Attempts is the total number of tries per view call. Default 3.
	Attempts int
	// Backoff before the second attempt; doubled per further attempt.
	// Default 10ms.
	Backoff time.Duration
	// MaxBackoff caps the per-retry delay. Default 250ms.
	MaxBackoff time.Duration
	// DegradeSampling answers retry-exhausted sampling calls with the
	// protocol's self-loop fallback (every slot holds the expanded seed)
	// instead of an error. Feature/label/degree errors always propagate:
	// fabricating attribute data silently would poison training, while a
	// self-loop neighborhood merely weakens one batch's aggregation.
	DegradeSampling bool
	// Transient, if set, classifies errors: a false return fails the call
	// immediately (retrying a deterministic rejection is wasted latency).
	// nil treats every error as possibly transient. cluster.Transient is
	// the natural choice for cluster-backed views.
	Transient func(error) bool
	// Metrics, if set, receives retry/degrade counters.
	Metrics *Metrics
	// Sleep replaces time.Sleep between attempts (test hook).
	Sleep func(time.Duration)
}

func (c ResilientConfig) withDefaults() ResilientConfig {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 250 * time.Millisecond
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// Resilient wraps an inner GraphView with bounded retry and optional
// sampling degradation.
type Resilient struct {
	inner GraphView
	cfg   ResilientConfig
}

var _ GraphView = (*Resilient)(nil)

// NewResilient wraps v. See ResilientConfig for the retry policy.
func NewResilient(v GraphView, cfg ResilientConfig) *Resilient {
	return &Resilient{inner: v, cfg: cfg.withDefaults()}
}

// Unwrap exposes the wrapped view for cursor helpers (SamplePos).
func (v *Resilient) Unwrap() GraphView { return v.inner }

// do runs call with the retry policy and returns the final error.
func (v *Resilient) do(call func() error) error {
	backoff := v.cfg.Backoff
	var err error
	for attempt := 0; attempt < v.cfg.Attempts; attempt++ {
		if attempt > 0 {
			v.cfg.Metrics.incRetry()
			v.cfg.Sleep(backoff)
			if backoff *= 2; backoff > v.cfg.MaxBackoff {
				backoff = v.cfg.MaxBackoff
			}
		}
		if err = call(); err == nil {
			return nil
		}
		if v.cfg.Transient != nil && !v.cfg.Transient(err) {
			v.cfg.Metrics.incPermanent()
			return err
		}
	}
	v.cfg.Metrics.incExhausted()
	return err
}

// SampleNeighbors implements GraphView with retry and optional degradation.
func (v *Resilient) SampleNeighbors(seeds []graph.VertexID, et graph.EdgeType, fanout int) ([]graph.VertexID, error) {
	var out []graph.VertexID
	err := v.do(func() (e error) {
		out, e = v.inner.SampleNeighbors(seeds, et, fanout)
		return e
	})
	if err != nil {
		if v.cfg.DegradeSampling {
			v.cfg.Metrics.incDegraded()
			return selfLoopLayer(seeds, fanout), nil
		}
		return nil, fmt.Errorf("view: sample neighbors (after %d attempts): %w", v.cfg.Attempts, err)
	}
	return out, nil
}

// SampleSubgraph implements GraphView with retry and optional degradation.
func (v *Resilient) SampleSubgraph(seeds []graph.VertexID, path graph.MetaPath, fanouts []int) ([][]graph.VertexID, error) {
	var out [][]graph.VertexID
	err := v.do(func() (e error) {
		out, e = v.inner.SampleSubgraph(seeds, path, fanouts)
		return e
	})
	if err != nil {
		if v.cfg.DegradeSampling {
			v.cfg.Metrics.incDegraded()
			layers := make([][]graph.VertexID, len(fanouts))
			frontier := seeds
			for i, f := range fanouts {
				layers[i] = selfLoopLayer(frontier, f)
				frontier = layers[i]
			}
			return layers, nil
		}
		return nil, fmt.Errorf("view: sample subgraph (after %d attempts): %w", v.cfg.Attempts, err)
	}
	return out, nil
}

// selfLoopLayer expands each frontier node into fanout copies of itself —
// the protocol's dense fallback for nodes without reachable neighbors,
// applied to a whole layer when sampling is unavailable.
func selfLoopLayer(frontier []graph.VertexID, fanout int) []graph.VertexID {
	out := make([]graph.VertexID, len(frontier)*fanout)
	for i, n := range frontier {
		for j := 0; j < fanout; j++ {
			out[i*fanout+j] = n
		}
	}
	return out
}

// Degrees implements GraphView with retry.
func (v *Resilient) Degrees(nodes []graph.VertexID, et graph.EdgeType) (out []int, err error) {
	err = v.do(func() (e error) {
		out, e = v.inner.Degrees(nodes, et)
		return e
	})
	return out, err
}

// Features implements GraphView with retry.
func (v *Resilient) Features(nodes []graph.VertexID, dim int) (out []float32, err error) {
	err = v.do(func() (e error) {
		out, e = v.inner.Features(nodes, dim)
		return e
	})
	return out, err
}

// Labels implements GraphView with retry.
func (v *Resilient) Labels(nodes []graph.VertexID) (out []int32, err error) {
	err = v.do(func() (e error) {
		out, e = v.inner.Labels(nodes)
		return e
	})
	return out, err
}

// Sources implements GraphView with retry.
func (v *Resilient) Sources(et graph.EdgeType) (out []graph.VertexID, err error) {
	err = v.do(func() (e error) {
		out, e = v.inner.Sources(et)
		return e
	})
	return out, err
}

// Metrics aggregates view-level resilience counters. The zero value is
// ready to use; all methods are safe on a nil receiver.
type Metrics struct {
	Retries   obs.Counter // attempts beyond the first, across all calls
	Exhausted obs.Counter // calls that failed after the full budget
	Permanent obs.Counter // calls failed fast on a non-transient error
	Degraded  obs.Counter // sampling calls answered with self-loop fallback
}

// MetricsSnapshot is a plain-value copy for printing and JSON encoding.
type MetricsSnapshot struct {
	Retries   int64
	Exhausted int64
	Permanent int64
	Degraded  int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		Retries:   m.Retries.Load(),
		Exhausted: m.Exhausted.Load(),
		Permanent: m.Permanent.Load(),
		Degraded:  m.Degraded.Load(),
	}
}

// String renders the snapshot compactly for logs and session reports.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf("retries=%d exhausted=%d permanent=%d degraded=%d",
		s.Retries, s.Exhausted, s.Permanent, s.Degraded)
}

// Expvar returns an expvar.Var rendering the counters as a JSON object.
func (m *Metrics) Expvar() expvar.Var {
	return expvar.Func(func() any { return m.Snapshot() })
}

// Register attaches the resilience counters to r under the stable
// platod2gl_view_* names documented in docs/OPERATIONS.md.
func (m *Metrics) Register(r *obs.Registry) {
	if m == nil {
		return
	}
	r.RegisterCounter("platod2gl_view_retries_total", "View call attempts beyond the first.", nil, &m.Retries)
	r.RegisterCounter("platod2gl_view_exhausted_total", "View calls that failed after the full retry budget.", nil, &m.Exhausted)
	r.RegisterCounter("platod2gl_view_permanent_total", "View calls failed fast on a non-transient error.", nil, &m.Permanent)
	r.RegisterCounter("platod2gl_view_degraded_total", "Sampling calls answered with the self-loop fallback.", nil, &m.Degraded)
}

func (m *Metrics) incRetry() {
	if m != nil {
		m.Retries.Add(1)
	}
}

func (m *Metrics) incExhausted() {
	if m != nil {
		m.Exhausted.Add(1)
	}
}

func (m *Metrics) incPermanent() {
	if m != nil {
		m.Permanent.Add(1)
	}
}

func (m *Metrics) incDegraded() {
	if m != nil {
		m.Degraded.Add(1)
	}
}
