// Per-call GraphView latency instrumentation: a transparent wrapper that
// times every view call into a per-method histogram family. It composes with
// any backend (Local, Cluster, Resilient) and sits wherever the caller wants
// the measurement taken — outside Resilient it measures what the trainer
// experiences (retries included), inside it measures raw backend latency.
package view

import (
	"time"

	"platod2gl/internal/graph"
	"platod2gl/internal/obs"
)

// viewCalls is the full GraphView call surface, used to pre-seed the
// histogram family so a scrape sees every series before traffic.
var viewCalls = []string{
	"SampleNeighbors", "SampleSubgraph", "Degrees", "Features", "Labels", "Sources",
}

// CallMetrics holds the per-call latency family plus call/error counters.
// The zero value is ready to use; methods are nil-safe.
type CallMetrics struct {
	Calls   obs.Counter      // view calls completed (any outcome)
	Errors  obs.Counter      // view calls that returned an error
	Latency obs.HistogramVec // nanoseconds, label = call
}

// Register attaches the family to r under the stable platod2gl_view_call_*
// names, pre-seeded with every GraphView call.
func (m *CallMetrics) Register(r *obs.Registry) {
	if m == nil {
		return
	}
	r.RegisterCounter("platod2gl_view_calls_total", "GraphView calls completed.", nil, &m.Calls)
	r.RegisterCounter("platod2gl_view_call_errors_total", "GraphView calls that returned an error.", nil, &m.Errors)
	for _, c := range viewCalls {
		m.Latency.With(c)
	}
	r.RegisterHistogramVec("platod2gl_view_call_latency_seconds",
		"Per-call GraphView latency (sampling, feature fetch, labels, degrees).", "call", 1e-9, &m.Latency)
}

func (m *CallMetrics) observe(call string, start time.Time, err error) {
	if m == nil {
		return
	}
	m.Calls.Add(1)
	if err != nil {
		m.Errors.Add(1)
	}
	m.Latency.With(call).ObserveSince(start)
}

// Instrumented wraps an inner GraphView, timing every call into m.
type Instrumented struct {
	inner GraphView
	m     *CallMetrics
}

var _ GraphView = (*Instrumented)(nil)

// Instrument wraps v so every call is timed into m. A nil m returns v
// unchanged — instrumentation stays optional with zero indirection cost.
func Instrument(v GraphView, m *CallMetrics) GraphView {
	if m == nil {
		return v
	}
	return &Instrumented{inner: v, m: m}
}

// Unwrap exposes the wrapped view for cursor helpers (SamplePos).
func (v *Instrumented) Unwrap() GraphView { return v.inner }

// SampleNeighbors implements GraphView with call timing.
func (v *Instrumented) SampleNeighbors(seeds []graph.VertexID, et graph.EdgeType, fanout int) (out []graph.VertexID, err error) {
	defer func(start time.Time) { v.m.observe("SampleNeighbors", start, err) }(time.Now())
	return v.inner.SampleNeighbors(seeds, et, fanout)
}

// SampleSubgraph implements GraphView with call timing.
func (v *Instrumented) SampleSubgraph(seeds []graph.VertexID, path graph.MetaPath, fanouts []int) (out [][]graph.VertexID, err error) {
	defer func(start time.Time) { v.m.observe("SampleSubgraph", start, err) }(time.Now())
	return v.inner.SampleSubgraph(seeds, path, fanouts)
}

// Degrees implements GraphView with call timing.
func (v *Instrumented) Degrees(nodes []graph.VertexID, et graph.EdgeType) (out []int, err error) {
	defer func(start time.Time) { v.m.observe("Degrees", start, err) }(time.Now())
	return v.inner.Degrees(nodes, et)
}

// Features implements GraphView with call timing.
func (v *Instrumented) Features(nodes []graph.VertexID, dim int) (out []float32, err error) {
	defer func(start time.Time) { v.m.observe("Features", start, err) }(time.Now())
	return v.inner.Features(nodes, dim)
}

// Labels implements GraphView with call timing.
func (v *Instrumented) Labels(nodes []graph.VertexID) (out []int32, err error) {
	defer func(start time.Time) { v.m.observe("Labels", start, err) }(time.Now())
	return v.inner.Labels(nodes)
}

// Sources implements GraphView with call timing.
func (v *Instrumented) Sources(et graph.EdgeType) (out []graph.VertexID, err error) {
	defer func(start time.Time) { v.m.observe("Sources", start, err) }(time.Now())
	return v.inner.Sources(et)
}
