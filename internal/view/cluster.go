package view

import (
	"context"
	"sync/atomic"
	"time"

	"platod2gl/internal/cluster"
	"platod2gl/internal/graph"
)

// Cluster adapts the fan-out cluster client to the GraphView contract, so
// trainers run unchanged against a sharded deployment: sampling and
// feature/label pulls become RPCs to the shards owning each vertex.
//
// Sampling RPCs carry an explicit RNG seed; Cluster derives a fresh one per
// call from the base seed, so repeated calls draw fresh samples while a
// single-threaded run stays reproducible end to end.
//
// Every call can carry an end-to-end budget (SetCallBudget): the deadline
// propagates through the client's retry loop and onto the wire as the
// request's remaining budget, so an overloaded server can shed the call
// instead of servicing it after the trainer has given up. Prefetch returns a
// twin view whose requests ride the lower prefetch admission class.
type Cluster struct {
	client *cluster.Client
	seed   int64
	seq    *atomic.Int64

	budget time.Duration
	pri    cluster.Priority
	hasPri bool
}

var _ GraphView = (*Cluster)(nil)

// NewCluster wraps client. seed makes the per-call sampling seed sequence
// reproducible for single-threaded (deterministic-mode) runs.
func NewCluster(client *cluster.Client, seed int64) *Cluster {
	return &Cluster{client: client, seed: seed, seq: new(atomic.Int64)}
}

// SetCallBudget sets the end-to-end deadline attached to every subsequent
// call through this view (and views derived from it afterwards). Zero
// disables the deadline (the default).
func (v *Cluster) SetCallBudget(d time.Duration) { v.budget = d }

// Prefetch returns a view over the same client, seed sequence, and budget
// whose requests are tagged with the prefetch admission class: under
// overload, servers shed them before interactive sampling traffic. Use it as
// the pipeline's loader view so background batch building yields to
// foreground work.
func (v *Cluster) Prefetch() *Cluster {
	w := *v
	w.pri = cluster.PriorityPrefetch
	w.hasPri = true
	return &w
}

// Background returns a view over the same client, seed sequence, and budget
// whose requests ride the background admission class — below both
// interactive and prefetch traffic. The serving tier's embedding refresher
// uses it so index maintenance never competes with live queries.
func (v *Cluster) Background() *Cluster {
	w := *v
	w.pri = cluster.PriorityBackground
	w.hasPri = true
	return &w
}

// ctx derives the per-call context: the view's priority class (when set) and
// call budget (when set) become the request's admission envelope.
func (v *Cluster) ctx() (context.Context, context.CancelFunc) {
	ctx := context.Background()
	if v.hasPri {
		ctx = cluster.WithPriority(ctx, v.pri)
	}
	if v.budget > 0 {
		return context.WithTimeout(ctx, v.budget)
	}
	return ctx, func() {}
}

// nextSeed spreads consecutive calls across the server-side RNG seed space.
func (v *Cluster) nextSeed() int64 {
	return v.seed + v.seq.Add(1)*1_000_003
}

// SamplePos returns the number of sampling calls issued so far — the cursor
// into the per-call seed sequence. Training checkpoints record it so a
// resumed deterministic run draws the same samples the uninterrupted run
// would have.
func (v *Cluster) SamplePos() int64 { return v.seq.Load() }

// SetSamplePos restores a cursor recorded by SamplePos.
func (v *Cluster) SetSamplePos(pos int64) { v.seq.Store(pos) }

// SampleNeighbors implements GraphView.
func (v *Cluster) SampleNeighbors(seeds []graph.VertexID, et graph.EdgeType, fanout int) ([]graph.VertexID, error) {
	ctx, cancel := v.ctx()
	defer cancel()
	return v.client.SampleNeighborsCtx(ctx, seeds, et, fanout, v.nextSeed())
}

// SampleSubgraph implements GraphView.
func (v *Cluster) SampleSubgraph(seeds []graph.VertexID, path graph.MetaPath, fanouts []int) ([][]graph.VertexID, error) {
	ctx, cancel := v.ctx()
	defer cancel()
	return v.client.SampleSubgraphCtx(ctx, seeds, path, fanouts, v.nextSeed())
}

// Degrees implements GraphView.
func (v *Cluster) Degrees(nodes []graph.VertexID, et graph.EdgeType) ([]int, error) {
	ctx, cancel := v.ctx()
	defer cancel()
	return v.client.DegreeCtx(ctx, nodes, et)
}

// Features implements GraphView.
func (v *Cluster) Features(nodes []graph.VertexID, dim int) ([]float32, error) {
	ctx, cancel := v.ctx()
	defer cancel()
	return v.client.FeaturesCtx(ctx, nodes, dim)
}

// Labels implements GraphView.
func (v *Cluster) Labels(nodes []graph.VertexID) ([]int32, error) {
	ctx, cancel := v.ctx()
	defer cancel()
	_, labels, err := v.client.FeaturesLabelsCtx(ctx, nodes, 0)
	return labels, err
}

// Sources implements GraphView.
func (v *Cluster) Sources(et graph.EdgeType) ([]graph.VertexID, error) {
	ctx, cancel := v.ctx()
	defer cancel()
	return v.client.SourcesCtx(ctx, et)
}
