package view

import (
	"sync/atomic"

	"platod2gl/internal/cluster"
	"platod2gl/internal/graph"
)

// Cluster adapts the fan-out cluster client to the GraphView contract, so
// trainers run unchanged against a sharded deployment: sampling and
// feature/label pulls become RPCs to the shards owning each vertex.
//
// Sampling RPCs carry an explicit RNG seed; Cluster derives a fresh one per
// call from the base seed, so repeated calls draw fresh samples while a
// single-threaded run stays reproducible end to end.
type Cluster struct {
	client *cluster.Client
	seed   int64
	seq    atomic.Int64
}

var _ GraphView = (*Cluster)(nil)

// NewCluster wraps client. seed makes the per-call sampling seed sequence
// reproducible for single-threaded (deterministic-mode) runs.
func NewCluster(client *cluster.Client, seed int64) *Cluster {
	return &Cluster{client: client, seed: seed}
}

// nextSeed spreads consecutive calls across the server-side RNG seed space.
func (v *Cluster) nextSeed() int64 {
	return v.seed + v.seq.Add(1)*1_000_003
}

// SamplePos returns the number of sampling calls issued so far — the cursor
// into the per-call seed sequence. Training checkpoints record it so a
// resumed deterministic run draws the same samples the uninterrupted run
// would have.
func (v *Cluster) SamplePos() int64 { return v.seq.Load() }

// SetSamplePos restores a cursor recorded by SamplePos.
func (v *Cluster) SetSamplePos(pos int64) { v.seq.Store(pos) }

// SampleNeighbors implements GraphView.
func (v *Cluster) SampleNeighbors(seeds []graph.VertexID, et graph.EdgeType, fanout int) ([]graph.VertexID, error) {
	return v.client.SampleNeighbors(seeds, et, fanout, v.nextSeed())
}

// SampleSubgraph implements GraphView.
func (v *Cluster) SampleSubgraph(seeds []graph.VertexID, path graph.MetaPath, fanouts []int) ([][]graph.VertexID, error) {
	return v.client.SampleSubgraph(seeds, path, fanouts, v.nextSeed())
}

// Degrees implements GraphView.
func (v *Cluster) Degrees(nodes []graph.VertexID, et graph.EdgeType) ([]int, error) {
	return v.client.Degree(nodes, et)
}

// Features implements GraphView.
func (v *Cluster) Features(nodes []graph.VertexID, dim int) ([]float32, error) {
	return v.client.Features(nodes, dim)
}

// Labels implements GraphView.
func (v *Cluster) Labels(nodes []graph.VertexID) ([]int32, error) {
	return v.client.Labels(nodes)
}

// Sources implements GraphView.
func (v *Cluster) Sources(et graph.EdgeType) ([]graph.VertexID, error) {
	return v.client.Sources(et)
}
