// Conformance: Local and Cluster must be interchangeable behind GraphView —
// same dense-result shapes, same self-loop fallback, identical attribute
// reads — so a trainer wired to one backend trains unchanged on the other.
package view_test

import (
	"math/rand"
	"sort"
	"testing"

	"platod2gl/internal/cluster"
	"platod2gl/internal/core"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/sampler"
	"platod2gl/internal/storage"
	"platod2gl/internal/view"
)

// buildViews constructs the same graph behind a Local view and a 2-shard
// single-replica Cluster view: n vertices with deterministic edges,
// features, and labels, plus one isolated vertex (the last seed) exercising
// the self-loop fallback.
func buildViews(t testing.TB) (local, remote view.GraphView, seeds []graph.VertexID, adj map[graph.VertexID]map[graph.VertexID]bool, shutdown func()) {
	t.Helper()
	const (
		n   = 40
		dim = 4
	)
	store := storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16}})
	attrs := kvstore.New()
	client, stop := cluster.NewLocalCluster(2, func(int) (storage.TopologyStore, *kvstore.Store) {
		return storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16}}), kvstore.New()
	})

	rng := rand.New(rand.NewSource(1))
	adj = make(map[graph.VertexID]map[graph.VertexID]bool)
	var events []graph.Event
	nodes := make([]graph.VertexID, n)
	data := make([]float32, 0, n*dim)
	labels := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		nodes[i] = graph.MakeVertexID(0, uint64(i))
		for d := 0; d < dim; d++ {
			data = append(data, float32(i)+float32(d)/10)
		}
		labels = append(labels, int32(i%3))
	}
	// Vertex n-1 stays isolated: no out-edges, exercising the fallback.
	for i := 0; i < n-1; i++ {
		src := nodes[i]
		adj[src] = make(map[graph.VertexID]bool)
		for j := 0; j < 4; j++ {
			dst := nodes[rng.Intn(n)]
			adj[src][dst] = true
			e := graph.Edge{Src: src, Dst: dst, Weight: 1 + rng.Float64()}
			store.AddEdge(e)
			events = append(events, graph.Event{Kind: graph.AddEdge, Edge: e, Timestamp: int64(i)})
		}
	}
	for i, id := range nodes {
		attrs.SetFeatures(id, data[i*dim:(i+1)*dim])
		attrs.SetLabel(id, labels[i])
	}
	if err := client.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := client.SetFeatures(nodes, dim, data, labels); err != nil {
		t.Fatal(err)
	}

	local = view.NewLocal(store, attrs, sampler.Options{Parallelism: 2, Seed: 1})
	remote = view.NewCluster(client, 1)
	return local, remote, nodes, adj, stop
}

func TestConformanceAttributeReads(t *testing.T) {
	local, remote, nodes, _, shutdown := buildViews(t)
	defer shutdown()
	const dim = 4
	// Mix in an unknown vertex: both backends must return a zero row and
	// label 0 for it.
	probe := append(append([]graph.VertexID{}, nodes...), graph.MakeVertexID(9, 77))

	lf, err := local.Features(probe, dim)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := remote.Features(probe, dim)
	if err != nil {
		t.Fatal(err)
	}
	if len(lf) != len(probe)*dim || len(rf) != len(lf) {
		t.Fatalf("feature lengths local=%d remote=%d", len(lf), len(rf))
	}
	for i := range lf {
		if lf[i] != rf[i] {
			t.Fatalf("feature[%d]: local %v != remote %v", i, lf[i], rf[i])
		}
	}

	ll, err := local.Labels(probe)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := remote.Labels(probe)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ll {
		if ll[i] != rl[i] {
			t.Fatalf("label[%d]: local %d != remote %d", i, ll[i], rl[i])
		}
	}

	ld, err := local.Degrees(probe, 0)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := remote.Degrees(probe, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ld {
		if ld[i] != rd[i] {
			t.Fatalf("degree[%d] (%v): local %d != remote %d", i, probe[i], ld[i], rd[i])
		}
	}
}

func TestConformanceSources(t *testing.T) {
	local, remote, _, _, shutdown := buildViews(t)
	defer shutdown()
	ls, err := local.Sources(0)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := remote.Sources(0)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	if len(ls) != len(rs) {
		t.Fatalf("sources: local %d != remote %d", len(ls), len(rs))
	}
	for i := range ls {
		if ls[i] != rs[i] {
			t.Fatalf("sources[%d]: local %v != remote %v", i, ls[i], rs[i])
		}
	}
}

func TestConformanceSamplingShapes(t *testing.T) {
	local, remote, nodes, adj, shutdown := buildViews(t)
	defer shutdown()
	seeds := []graph.VertexID{nodes[0], nodes[3], nodes[7], nodes[3]}
	const fanout = 6
	for name, v := range map[string]view.GraphView{"local": local, "cluster": remote} {
		nb, err := v.SampleNeighbors(seeds, 0, fanout)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(nb) != len(seeds)*fanout {
			t.Fatalf("%s: SampleNeighbors length %d, want %d", name, len(nb), len(seeds)*fanout)
		}
		for i, got := range nb {
			seed := seeds[i/fanout]
			if got != seed && !adj[seed][got] {
				t.Fatalf("%s: sample[%d] = %v is neither a neighbor of %v nor the seed", name, i, got, seed)
			}
		}

		layers, err := v.SampleSubgraph(seeds, graph.MetaPath{0, 0}, []int{3, 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(layers) != 2 || len(layers[0]) != len(seeds)*3 || len(layers[1]) != len(seeds)*3*2 {
			t.Fatalf("%s: subgraph layer sizes %d/%d", name, len(layers[0]), len(layers[1]))
		}
	}
}

func TestConformanceSelfLoopFallback(t *testing.T) {
	local, remote, nodes, _, shutdown := buildViews(t)
	defer shutdown()
	isolated := nodes[len(nodes)-1]
	unknown := graph.MakeVertexID(9, 1234)
	for name, v := range map[string]view.GraphView{"local": local, "cluster": remote} {
		nb, err := v.SampleNeighbors([]graph.VertexID{isolated, unknown}, 0, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := []graph.VertexID{isolated, isolated, isolated, unknown, unknown, unknown}
		for i := range want {
			if nb[i] != want[i] {
				t.Fatalf("%s: fallback sample[%d] = %v, want %v", name, i, nb[i], want[i])
			}
		}
	}
}
