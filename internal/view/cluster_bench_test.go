package view

import (
	"testing"

	"platod2gl/internal/cluster"
	"platod2gl/internal/core"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

// Client-side allocation benchmarks for the cluster view's sampling hot
// path. The fan-out scratch (per-shard seed partitions, occurrence lists,
// coalescing map) is pooled in internal/cluster and the wire codec encodes
// without reflection, so steady-state allocs/op here is the regression
// signal for the pooling — run with -benchmem.

func benchCluster(b *testing.B, servers int) (*Cluster, func()) {
	b.Helper()
	lc := cluster.NewLocalClusterOptions(servers, cluster.LocalOptions{
		StoreFactory: func(int) (storage.TopologyStore, *kvstore.Store) {
			return storage.NewDynamicStore(storage.Options{
				Tree: core.Options{Capacity: 64}}), kvstore.New()
		},
	})
	client := lc.Client()
	var events []graph.Event
	for i := 0; i < 4096; i++ {
		events = append(events, graph.Event{Kind: graph.AddEdge,
			Edge: graph.Edge{Src: graph.VertexID(i % 512), Dst: graph.VertexID(i), Weight: 1}})
	}
	if err := client.ApplyBatch(events); err != nil {
		b.Fatal(err)
	}
	return NewCluster(client, 7), lc.Shutdown
}

func BenchmarkClusterViewSample(b *testing.B) {
	v, shutdown := benchCluster(b, 4)
	defer shutdown()
	seeds := make([]graph.VertexID, 256)
	for i := range seeds {
		// Duplicates on purpose: the coalescing map and occurrence lists are
		// part of the measured path.
		seeds[i] = graph.VertexID(i % 128)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.SampleNeighbors(seeds, 0, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterViewDegrees(b *testing.B) {
	v, shutdown := benchCluster(b, 4)
	defer shutdown()
	nodes := make([]graph.VertexID, 256)
	for i := range nodes {
		nodes[i] = graph.VertexID(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Degrees(nodes, 0); err != nil {
			b.Fatal(err)
		}
	}
}
