// Package view decouples GNN training from graph storage: GraphView is the
// backend-agnostic contract of the paper's TF-operator layer (Sec. III) —
// trainers issue neighbor/subgraph sampling and feature/label pulls against
// it and never touch a concrete store. Local wraps an in-process
// storage.TopologyStore + kvstore.Store behind the contract; Cluster (see
// cluster.go) adapts the fan-out cluster client, so the same training loop
// runs against one machine or a sharded deployment unchanged.
package view

import (
	"time"

	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/sampler"
	"platod2gl/internal/storage"
)

// GraphView is the storage seam trainers consume. Every implementation
// shares the protocol's dense-result conventions: sampling results are
// always full length (a seed without out-neighbors yields itself — the
// self-loop fallback), unknown vertices produce zero feature rows, and
// unlabeled vertices get label 0.
type GraphView interface {
	// SampleNeighbors draws fanout weighted neighbors (with replacement)
	// per seed under relation et; len(result) == len(seeds)*fanout.
	SampleNeighbors(seeds []graph.VertexID, et graph.EdgeType, fanout int) ([]graph.VertexID, error)
	// SampleSubgraph expands seeds hop by hop along the meta-path: layer i
	// holds len(previous frontier) * fanouts[i] nodes.
	SampleSubgraph(seeds []graph.VertexID, path graph.MetaPath, fanouts []int) ([][]graph.VertexID, error)
	// Degrees returns the out-degree of each node under et.
	Degrees(nodes []graph.VertexID, et graph.EdgeType) ([]int, error)
	// Features gathers a dense row-major (len(nodes) x dim) feature matrix.
	Features(nodes []graph.VertexID, dim int) ([]float32, error)
	// Labels returns the class label of each node (0 when unlabeled).
	Labels(nodes []graph.VertexID) ([]int32, error)
	// Sources lists the vertices with out-edges under et.
	Sources(et graph.EdgeType) ([]graph.VertexID, error)
}

// Local is the single-machine GraphView: a topology store, its sampler, and
// an attribute store. All errors are nil; the interface's error returns
// exist for remote backends.
type Local struct {
	store storage.TopologyStore
	attrs *kvstore.Store
	smp   *sampler.Sampler
}

// NewLocal wraps store and attrs behind the GraphView contract. opt tunes
// the batch sampler (parallelism, determinism seed) — the knobs trainers
// previously hardcoded.
func NewLocal(store storage.TopologyStore, attrs *kvstore.Store, opt sampler.Options) *Local {
	return &Local{store: store, attrs: attrs, smp: sampler.New(store, opt)}
}

// SampleNeighbors implements GraphView.
func (v *Local) SampleNeighbors(seeds []graph.VertexID, et graph.EdgeType, fanout int) ([]graph.VertexID, error) {
	return v.smp.SampleNeighbors(seeds, et, fanout).Neighbors, nil
}

// SampleSubgraph implements GraphView.
func (v *Local) SampleSubgraph(seeds []graph.VertexID, path graph.MetaPath, fanouts []int) ([][]graph.VertexID, error) {
	sg := v.smp.SampleSubgraph(seeds, path, fanouts)
	layers := make([][]graph.VertexID, len(sg.Layers))
	for i, l := range sg.Layers {
		layers[i] = l.Nodes
	}
	return layers, nil
}

// Degrees implements GraphView.
func (v *Local) Degrees(nodes []graph.VertexID, et graph.EdgeType) ([]int, error) {
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = v.store.Degree(n, et)
	}
	return out, nil
}

// Features implements GraphView.
func (v *Local) Features(nodes []graph.VertexID, dim int) ([]float32, error) {
	return v.attrs.GatherFeatures(nodes, dim), nil
}

// Labels implements GraphView.
func (v *Local) Labels(nodes []graph.VertexID) ([]int32, error) {
	return v.attrs.GatherLabels(nodes), nil
}

// Sources implements GraphView.
func (v *Local) Sources(et graph.EdgeType) ([]graph.VertexID, error) {
	return v.store.Sources(et), nil
}

// sampleCursor is implemented by views whose per-call sampling seeds form a
// recorded sequence (view.Cluster). Checkpoint/resume records and restores
// the cursor so a resumed deterministic run replays the exact sampling-seed
// sequence the uninterrupted run would have used.
type sampleCursor interface {
	SamplePos() int64
	SetSamplePos(int64)
}

// unwrapper is implemented by wrapper views (Resilient, WithLatency) so
// cursor helpers can reach the backing view through a wrapper chain.
type unwrapper interface {
	Unwrap() GraphView
}

// SamplePos returns v's sampling-seed cursor, unwrapping wrapper views.
// Views without a cursor (Local: per-call sampling is a pure function of the
// sampler seed and the batch) report 0.
func SamplePos(v GraphView) int64 {
	for v != nil {
		if c, ok := v.(sampleCursor); ok {
			return c.SamplePos()
		}
		w, ok := v.(unwrapper)
		if !ok {
			return 0
		}
		v = w.Unwrap()
	}
	return 0
}

// SetSamplePos restores a cursor previously read with SamplePos, unwrapping
// wrapper views. A no-op for views without a cursor.
func SetSamplePos(v GraphView, pos int64) {
	for v != nil {
		if c, ok := v.(sampleCursor); ok {
			c.SetSamplePos(pos)
			return
		}
		w, ok := v.(unwrapper)
		if !ok {
			return
		}
		v = w.Unwrap()
	}
}

// WithLatency wraps v so every call sleeps d first — an injected per-call
// RPC latency for demonstrating (and benchmarking) how the prefetch
// pipeline overlaps storage waits with compute.
func WithLatency(v GraphView, d time.Duration) GraphView {
	return &delayed{inner: v, d: d}
}

type delayed struct {
	inner GraphView
	d     time.Duration
}

// Unwrap exposes the wrapped view for cursor helpers.
func (v *delayed) Unwrap() GraphView { return v.inner }

func (v *delayed) SampleNeighbors(seeds []graph.VertexID, et graph.EdgeType, fanout int) ([]graph.VertexID, error) {
	time.Sleep(v.d)
	return v.inner.SampleNeighbors(seeds, et, fanout)
}

func (v *delayed) SampleSubgraph(seeds []graph.VertexID, path graph.MetaPath, fanouts []int) ([][]graph.VertexID, error) {
	time.Sleep(v.d)
	return v.inner.SampleSubgraph(seeds, path, fanouts)
}

func (v *delayed) Degrees(nodes []graph.VertexID, et graph.EdgeType) ([]int, error) {
	time.Sleep(v.d)
	return v.inner.Degrees(nodes, et)
}

func (v *delayed) Features(nodes []graph.VertexID, dim int) ([]float32, error) {
	time.Sleep(v.d)
	return v.inner.Features(nodes, dim)
}

func (v *delayed) Labels(nodes []graph.VertexID) ([]int32, error) {
	time.Sleep(v.d)
	return v.inner.Labels(nodes)
}

func (v *delayed) Sources(et graph.EdgeType) ([]graph.VertexID, error) {
	time.Sleep(v.d)
	return v.inner.Sources(et)
}
