// Prefetch observability: did the pipeline actually hide storage latency?
// A healthy pipelined epoch shows mostly prefetch hits (the next batch was
// ready before the trainer asked) and little stall time; a stall-dominated
// epoch means depth/workers are too low for the backend's latency. Counters
// follow internal/cluster's conventions: cheap atomics, nil-safe helpers,
// expvar-publishable.
package pipeline

import (
	"expvar"
	"fmt"
	"sync/atomic"
	"time"
)

// Metrics aggregates prefetch counters. The zero value is ready to use; all
// methods are safe on a nil receiver so metrics stay optional.
type Metrics struct {
	BatchesBuilt atomic.Int64 // batch build attempts completed by workers
	BuildNanos   atomic.Int64 // total time spent building batches
	PrefetchHits atomic.Int64 // Next() served an already-buffered batch
	Stalls       atomic.Int64 // Next() had to wait for the batch
	StallNanos   atomic.Int64 // total time the consumer spent waiting
	BatchRetries atomic.Int64 // failed builds retried within Config.Retries
	BatchFailures atomic.Int64 // batches whose retry budget ran out
}

// MetricsSnapshot is a plain-value copy for printing and JSON encoding.
type MetricsSnapshot struct {
	BatchesBuilt  int64
	BuildNanos    int64
	PrefetchHits  int64
	Stalls        int64
	StallNanos    int64
	BatchRetries  int64
	BatchFailures int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		BatchesBuilt:  m.BatchesBuilt.Load(),
		BuildNanos:    m.BuildNanos.Load(),
		PrefetchHits:  m.PrefetchHits.Load(),
		Stalls:        m.Stalls.Load(),
		StallNanos:    m.StallNanos.Load(),
		BatchRetries:  m.BatchRetries.Load(),
		BatchFailures: m.BatchFailures.Load(),
	}
}

// HitRate returns the fraction of consumer reads served without stalling.
func (s MetricsSnapshot) HitRate() float64 {
	total := s.PrefetchHits + s.Stalls
	if total == 0 {
		return 0
	}
	return float64(s.PrefetchHits) / float64(total)
}

// String renders the snapshot compactly for logs and epoch reports.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf("built=%d build_time=%s hits=%d stalls=%d stall_time=%s hit_rate=%.2f retries=%d failures=%d",
		s.BatchesBuilt, time.Duration(s.BuildNanos), s.PrefetchHits, s.Stalls,
		time.Duration(s.StallNanos), s.HitRate(), s.BatchRetries, s.BatchFailures)
}

// Expvar returns an expvar.Var rendering the counters as a JSON object, for
// expvar.Publish under the caller's chosen name.
func (m *Metrics) Expvar() expvar.Var {
	return expvar.Func(func() any { return m.Snapshot() })
}

func (m *Metrics) addBuild(d time.Duration) {
	if m != nil {
		m.BatchesBuilt.Add(1)
		m.BuildNanos.Add(int64(d))
	}
}

func (m *Metrics) incHit() {
	if m != nil {
		m.PrefetchHits.Add(1)
	}
}

func (m *Metrics) addStall(d time.Duration) {
	if m != nil {
		m.Stalls.Add(1)
		m.StallNanos.Add(int64(d))
	}
}

func (m *Metrics) incBatchRetry() {
	if m != nil {
		m.BatchRetries.Add(1)
	}
}

func (m *Metrics) incBatchFailure() {
	if m != nil {
		m.BatchFailures.Add(1)
	}
}
