// Prefetch observability: did the pipeline actually hide storage latency?
// A healthy pipelined epoch shows mostly prefetch hits (the next batch was
// ready before the trainer asked) and little stall time; a stall-dominated
// epoch means depth/workers are too low for the backend's latency. Counters
// follow internal/cluster's conventions: cheap atomics, nil-safe helpers,
// expvar-publishable — plus per-stage latency histograms (build / queue wait
// / consumer stall) on the unified internal/obs registry.
package pipeline

import (
	"expvar"
	"fmt"
	"time"

	"platod2gl/internal/obs"
)

// Metrics aggregates prefetch counters and per-stage histograms. The zero
// value is ready to use; all methods are safe on a nil receiver so metrics
// stay optional.
type Metrics struct {
	BatchesBuilt  obs.Counter // batch build attempts completed by workers
	BuildNanos    obs.Counter // total time spent building batches
	PrefetchHits  obs.Counter // Next() served an already-buffered batch
	Stalls        obs.Counter // Next() had to wait for the batch
	StallNanos    obs.Counter // total time the consumer spent waiting
	BatchRetries  obs.Counter // failed builds retried within Config.Retries
	BatchFailures obs.Counter // batches whose retry budget ran out

	// Per-stage latency histograms (nanoseconds). Build covers one load()
	// attempt; Wait covers a built batch sitting queued until the consumer
	// takes it; Deliver covers the consumer-visible stall inside Next().
	BuildLatency   obs.Histogram
	WaitLatency    obs.Histogram
	DeliverLatency obs.Histogram
}

// MetricsSnapshot is a plain-value copy for printing and JSON encoding.
type MetricsSnapshot struct {
	BatchesBuilt  int64
	BuildNanos    int64
	PrefetchHits  int64
	Stalls        int64
	StallNanos    int64
	BatchRetries  int64
	BatchFailures int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		BatchesBuilt:  m.BatchesBuilt.Load(),
		BuildNanos:    m.BuildNanos.Load(),
		PrefetchHits:  m.PrefetchHits.Load(),
		Stalls:        m.Stalls.Load(),
		StallNanos:    m.StallNanos.Load(),
		BatchRetries:  m.BatchRetries.Load(),
		BatchFailures: m.BatchFailures.Load(),
	}
}

// HitRate returns the fraction of consumer reads served without stalling.
func (s MetricsSnapshot) HitRate() float64 {
	total := s.PrefetchHits + s.Stalls
	if total == 0 {
		return 0
	}
	return float64(s.PrefetchHits) / float64(total)
}

// String renders the snapshot compactly for logs and epoch reports.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf("built=%d build_time=%s hits=%d stalls=%d stall_time=%s hit_rate=%.2f retries=%d failures=%d",
		s.BatchesBuilt, time.Duration(s.BuildNanos), s.PrefetchHits, s.Stalls,
		time.Duration(s.StallNanos), s.HitRate(), s.BatchRetries, s.BatchFailures)
}

// Expvar returns an expvar.Var rendering the counters as a JSON object, for
// expvar.Publish under the caller's chosen name.
func (m *Metrics) Expvar() expvar.Var {
	return expvar.Func(func() any { return m.Snapshot() })
}

// Register attaches every counter and histogram to r under the stable
// platod2gl_pipeline_* names documented in docs/OPERATIONS.md.
func (m *Metrics) Register(r *obs.Registry) {
	if m == nil {
		return
	}
	for _, c := range []struct {
		name, help string
		c          *obs.Counter
	}{
		{"platod2gl_pipeline_batches_built_total", "Batch build attempts completed by prefetch workers.", &m.BatchesBuilt},
		{"platod2gl_pipeline_build_nanos_total", "Total nanoseconds spent building batches.", &m.BuildNanos},
		{"platod2gl_pipeline_prefetch_hits_total", "Consumer reads served from an already-buffered batch.", &m.PrefetchHits},
		{"platod2gl_pipeline_stalls_total", "Consumer reads that had to wait for the batch.", &m.Stalls},
		{"platod2gl_pipeline_stall_nanos_total", "Total nanoseconds the consumer spent waiting.", &m.StallNanos},
		{"platod2gl_pipeline_batch_retries_total", "Failed builds retried within the retry budget.", &m.BatchRetries},
		{"platod2gl_pipeline_batch_failures_total", "Batches whose retry budget ran out.", &m.BatchFailures},
	} {
		r.RegisterCounter(c.name, c.help, nil, c.c)
	}
	r.RegisterHistogram("platod2gl_pipeline_build_latency_seconds",
		"Per-attempt batch build latency (sampling + feature fetch + assembly).", nil, 1e-9, &m.BuildLatency)
	r.RegisterHistogram("platod2gl_pipeline_wait_latency_seconds",
		"Time a built batch sat queued before the consumer took it.", nil, 1e-9, &m.WaitLatency)
	r.RegisterHistogram("platod2gl_pipeline_deliver_latency_seconds",
		"Consumer-visible stall time inside Next().", nil, 1e-9, &m.DeliverLatency)
}

func (m *Metrics) addBuild(d time.Duration) {
	if m != nil {
		m.BatchesBuilt.Add(1)
		m.BuildNanos.Add(int64(d))
		m.BuildLatency.Observe(int64(d))
	}
}

func (m *Metrics) observeWait(builtAt time.Time) {
	if m != nil && !builtAt.IsZero() {
		m.WaitLatency.ObserveSince(builtAt)
	}
}

func (m *Metrics) incHit() {
	if m != nil {
		m.PrefetchHits.Add(1)
	}
}

func (m *Metrics) addStall(d time.Duration) {
	if m != nil {
		m.Stalls.Add(1)
		m.StallNanos.Add(int64(d))
		m.DeliverLatency.Observe(int64(d))
	}
}

func (m *Metrics) incBatchRetry() {
	if m != nil {
		m.BatchRetries.Add(1)
	}
}

func (m *Metrics) incBatchFailure() {
	if m != nil {
		m.BatchFailures.Add(1)
	}
}
