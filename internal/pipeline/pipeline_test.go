package pipeline_test

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/gnn"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/pipeline"
	"platod2gl/internal/sampler"
	"platod2gl/internal/storage"
	"platod2gl/internal/view"
)

// buildClassGraph mirrors the gnn package's homophilous fixture: n vertices
// in `classes` communities, 6 same-class edges each, 8-dim features.
func buildClassGraph(t testing.TB, n, classes int) (view.GraphView, []graph.VertexID) {
	t.Helper()
	store := storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 32}})
	attrs := kvstore.New()
	dataset.AssignFeatures(attrs, 0, uint64(n), 8, classes, 0.3, 1)
	rng := rand.New(rand.NewSource(2))
	byClass := make([][]graph.VertexID, classes)
	ids := make([]graph.VertexID, n)
	for i := 0; i < n; i++ {
		id := graph.MakeVertexID(0, uint64(i))
		ids[i] = id
		l, _ := attrs.Label(id)
		byClass[l] = append(byClass[l], id)
	}
	for _, id := range ids {
		l, _ := attrs.Label(id)
		peers := byClass[l]
		for j := 0; j < 6; j++ {
			store.AddEdge(graph.Edge{Src: id, Dst: peers[rng.Intn(len(peers))], Weight: 1})
		}
	}
	return view.NewLocal(store, attrs, sampler.Options{Parallelism: 2, Seed: 1}), ids
}

// fakeLoader returns batches that carry only their seed slice, tagging
// build order without any training machinery.
func fakeLoader(seeds []graph.VertexID) (*gnn.Batch, error) {
	return &gnn.Batch{Seeds: seeds}, nil
}

func TestSeedBatchesMatchesTrainEpochOrder(t *testing.T) {
	gv, ids := buildClassGraph(t, 100, 3)
	_ = gv
	// Same rng seed → SeedBatches must visit the exact permutation the
	// synchronous TrainEpoch uses (rng.Perm, full batches only).
	rngA := rand.New(rand.NewSource(42))
	batches := pipeline.SeedBatches(ids, 32, rngA)
	rngB := rand.New(rand.NewSource(42))
	perm := rngB.Perm(len(ids))
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3 (remainder dropped)", len(batches))
	}
	for bi, b := range batches {
		if len(b) != 32 {
			t.Fatalf("batch %d size %d", bi, len(b))
		}
		for i, id := range b {
			if want := ids[perm[bi*32+i]]; id != want {
				t.Fatalf("batch %d slot %d: %v, want %v", bi, i, id, want)
			}
		}
	}
	if pipeline.SeedBatches(ids, 0, rand.New(rand.NewSource(1))) != nil {
		t.Fatal("batchSize 0 should produce no batches")
	}
}

func TestPipelineDeliversInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		seedBatches := make([][]graph.VertexID, 17)
		for i := range seedBatches {
			seedBatches[i] = []graph.VertexID{graph.VertexID(i)}
		}
		// Uneven build times scramble completion order across workers;
		// delivery order must stay 0..n-1 regardless.
		load := func(seeds []graph.VertexID) (*gnn.Batch, error) {
			time.Sleep(time.Duration(int(seeds[0])%3) * time.Millisecond)
			return fakeLoader(seeds)
		}
		p := pipeline.Run(seedBatches, load, pipeline.Config{Depth: 4, Workers: workers})
		next := 0
		for {
			r, ok := p.Next()
			if !ok {
				break
			}
			if r.Err != nil {
				t.Fatalf("workers=%d: unexpected error %v", workers, r.Err)
			}
			if r.Index != next {
				t.Fatalf("workers=%d: got index %d, want %d", workers, r.Index, next)
			}
			if r.Batch.Seeds[0] != seedBatches[next][0] {
				t.Fatalf("workers=%d: batch %d carries seeds %v", workers, next, r.Batch.Seeds)
			}
			next++
		}
		if next != len(seedBatches) {
			t.Fatalf("workers=%d: delivered %d batches, want %d", workers, next, len(seedBatches))
		}
		p.Stop()
	}
}

func TestPipelineErrorPropagatesInOrder(t *testing.T) {
	boom := errors.New("shard down")
	seedBatches := make([][]graph.VertexID, 10)
	for i := range seedBatches {
		seedBatches[i] = []graph.VertexID{graph.VertexID(i)}
	}
	const failAt = 6
	load := func(seeds []graph.VertexID) (*gnn.Batch, error) {
		if int(seeds[0]) == failAt {
			return nil, boom
		}
		return fakeLoader(seeds)
	}
	p := pipeline.Run(seedBatches, load, pipeline.Config{Depth: 3, Workers: 3})
	defer p.Stop()
	seen := 0
	for {
		r, ok := p.Next()
		if !ok {
			break
		}
		if r.Err != nil {
			if !errors.Is(r.Err, boom) {
				t.Fatalf("wrong error: %v", r.Err)
			}
			if r.Index != failAt {
				t.Fatalf("error delivered at index %d, want %d", r.Index, failAt)
			}
			// After the in-order error the stream must close.
			if _, ok := p.Next(); ok {
				t.Fatal("stream not closed after delivered error")
			}
			if seen != failAt {
				t.Fatalf("saw %d good batches before the error, want %d", seen, failAt)
			}
			return
		}
		if r.Index != seen {
			t.Fatalf("out of order: %d vs %d", r.Index, seen)
		}
		seen++
	}
	t.Fatal("error was never delivered")
}

func TestPipelineStopReleasesWorkers(t *testing.T) {
	seedBatches := make([][]graph.VertexID, 100)
	for i := range seedBatches {
		seedBatches[i] = []graph.VertexID{graph.VertexID(i)}
	}
	load := func(seeds []graph.VertexID) (*gnn.Batch, error) {
		time.Sleep(200 * time.Microsecond)
		return fakeLoader(seeds)
	}
	p := pipeline.Run(seedBatches, load, pipeline.Config{Depth: 4, Workers: 4})
	// Abandon after 3 batches; Stop must unblock and reap every goroutine.
	for i := 0; i < 3; i++ {
		if _, ok := p.Next(); !ok {
			t.Fatal("stream ended early")
		}
	}
	done := make(chan struct{})
	go func() {
		p.Stop()
		p.Stop() // idempotent
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return")
	}
}

// TestPipelineBatchRetryRecovers fails each batch's first build attempts a
// scripted number of times; with a sufficient retry budget every batch must
// still be delivered in order with no error.
func TestPipelineBatchRetryRecovers(t *testing.T) {
	seedBatches := make([][]graph.VertexID, 8)
	for i := range seedBatches {
		seedBatches[i] = []graph.VertexID{graph.VertexID(i)}
	}
	var mu sync.Mutex
	attempts := make(map[int]int)
	load := func(seeds []graph.VertexID) (*gnn.Batch, error) {
		i := int(seeds[0])
		mu.Lock()
		attempts[i]++
		n := attempts[i]
		mu.Unlock()
		// Batches 2 and 5 fail twice before succeeding.
		if (i == 2 || i == 5) && n <= 2 {
			return nil, fmt.Errorf("transient build failure %d/%d", i, n)
		}
		return fakeLoader(seeds)
	}
	var m pipeline.Metrics
	p := pipeline.Run(seedBatches, load, pipeline.Config{Depth: 3, Workers: 2, Retries: 2, Metrics: &m})
	defer p.Stop()
	next := 0
	for {
		r, ok := p.Next()
		if !ok {
			break
		}
		if r.Err != nil {
			t.Fatalf("batch %d error despite retry budget: %v", r.Index, r.Err)
		}
		if r.Index != next {
			t.Fatalf("out of order: %d vs %d", r.Index, next)
		}
		next++
	}
	if next != len(seedBatches) {
		t.Fatalf("delivered %d batches, want %d", next, len(seedBatches))
	}
	s := m.Snapshot()
	if s.BatchRetries != 4 {
		t.Fatalf("BatchRetries = %d, want 4 (2 batches x 2 retries)", s.BatchRetries)
	}
	if s.BatchFailures != 0 {
		t.Fatalf("BatchFailures = %d", s.BatchFailures)
	}
}

// TestPipelineRetryBudgetExhausted checks a persistently failing batch still
// surfaces its error in order once the budget runs out.
func TestPipelineRetryBudgetExhausted(t *testing.T) {
	boom := errors.New("shard gone for good")
	seedBatches := make([][]graph.VertexID, 6)
	for i := range seedBatches {
		seedBatches[i] = []graph.VertexID{graph.VertexID(i)}
	}
	load := func(seeds []graph.VertexID) (*gnn.Batch, error) {
		if int(seeds[0]) == 3 {
			return nil, boom
		}
		return fakeLoader(seeds)
	}
	var m pipeline.Metrics
	p := pipeline.Run(seedBatches, load, pipeline.Config{Depth: 2, Workers: 2, Retries: 3, Metrics: &m})
	defer p.Stop()
	seen := 0
	for {
		r, ok := p.Next()
		if !ok {
			break
		}
		if r.Err != nil {
			if r.Index != 3 || seen != 3 {
				t.Fatalf("error at index %d after %d batches, want 3/3", r.Index, seen)
			}
			if !errors.Is(r.Err, boom) {
				t.Fatalf("wrong error: %v", r.Err)
			}
			s := m.Snapshot()
			if s.BatchRetries != 3 || s.BatchFailures != 1 {
				t.Fatalf("metrics: %s", s)
			}
			return
		}
		seen++
	}
	t.Fatal("error never delivered")
}

// TestPipelineAbandonNoGoroutineLeak is the shutdown-leak regression test:
// a consumer that stops reading mid-stream and calls Close/Stop must reap
// every pipeline goroutine.
func TestPipelineAbandonNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	seedBatches := make([][]graph.VertexID, 200)
	for i := range seedBatches {
		seedBatches[i] = []graph.VertexID{graph.VertexID(i)}
	}
	load := func(seeds []graph.VertexID) (*gnn.Batch, error) {
		time.Sleep(100 * time.Microsecond)
		return fakeLoader(seeds)
	}
	for round := 0; round < 5; round++ {
		p := pipeline.Run(seedBatches, load, pipeline.Config{Depth: 8, Workers: 4})
		// Read a couple of batches, then walk away mid-stream.
		for i := 0; i < 2; i++ {
			if _, ok := p.Next(); !ok {
				t.Fatal("stream ended early")
			}
		}
		p.Close() // non-blocking abandon
		p.Stop()  // barrier: all goroutines reaped
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPipelineMetricsHitsAndStalls(t *testing.T) {
	seedBatches := make([][]graph.VertexID, 6)
	for i := range seedBatches {
		seedBatches[i] = []graph.VertexID{graph.VertexID(i)}
	}
	// Slow loader + fast consumer: every read beyond the warm-up stalls.
	var m pipeline.Metrics
	load := func(seeds []graph.VertexID) (*gnn.Batch, error) {
		time.Sleep(2 * time.Millisecond)
		return fakeLoader(seeds)
	}
	p := pipeline.Run(seedBatches, load, pipeline.Config{Depth: 2, Workers: 1, Metrics: &m})
	for {
		if _, ok := p.Next(); !ok {
			break
		}
	}
	p.Stop()
	s := m.Snapshot()
	if s.BatchesBuilt != 6 {
		t.Fatalf("BatchesBuilt = %d", s.BatchesBuilt)
	}
	if s.Stalls == 0 || s.StallNanos == 0 {
		t.Fatalf("slow loader recorded no stalls: %+v", s)
	}

	// Fast loader + slow consumer: after warm-up the next batch is always
	// buffered, so hits dominate.
	var m2 pipeline.Metrics
	p2 := pipeline.Run(seedBatches, fakeLoader, pipeline.Config{Depth: 2, Workers: 1, Metrics: &m2})
	for {
		time.Sleep(2 * time.Millisecond)
		if _, ok := p2.Next(); !ok {
			break
		}
	}
	p2.Stop()
	s2 := m2.Snapshot()
	if s2.PrefetchHits < 4 {
		t.Fatalf("fast loader: hits = %d, want most of 6: %+v", s2.PrefetchHits, s2)
	}
	if got := s2.HitRate(); got <= 0.5 {
		t.Fatalf("HitRate = %.2f", got)
	}
	if s2.String() == "" || (&m2).Expvar().String() == "" {
		t.Fatal("empty metrics renderings")
	}
}

// TestPipelinedEpochMatchesSynchronous is the determinism contract: with a
// single worker, a pipelined epoch trains on the same mini-batches in the
// same order and lands on bit-identical losses and parameters.
func TestPipelinedEpochMatchesSynchronous(t *testing.T) {
	gv, ids := buildClassGraph(t, 200, 3)
	syncModel := gnn.NewModel(8, 16, 3, rand.New(rand.NewSource(5)))
	pipeModel := gnn.NewModel(8, 16, 3, rand.New(rand.NewSource(5)))
	syncTr := gnn.NewTrainer(syncModel, gv, 0, 4, 3, 0.02)
	pipeTr := gnn.NewTrainer(pipeModel, gv, 0, 4, 3, 0.02)

	for epoch := 0; epoch < 3; epoch++ {
		syncRes, err := syncTr.TrainEpoch(epoch, ids, 32, rand.New(rand.NewSource(int64(9+epoch))))
		if err != nil {
			t.Fatal(err)
		}
		pipeRes, err := pipeline.TrainEpoch(pipeTr, pipeTr.SampleBatch, epoch,
			ids, 32, rand.New(rand.NewSource(int64(9+epoch))), pipeline.Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if syncRes != pipeRes {
			t.Fatalf("epoch %d diverged: sync %+v vs pipelined %+v", epoch, syncRes, pipeRes)
		}
	}
	sp, pp := syncModel.Params(), pipeModel.Params()
	for i := range sp {
		for j := range sp[i].Data {
			if sp[i].Data[j] != pp[i].Data[j] {
				t.Fatalf("param %d[%d] diverged: %v vs %v", i, j, sp[i].Data[j], pp[i].Data[j])
			}
		}
	}
}

// TestPipelinedEpochEmpty covers the no-full-batch edge case.
func TestPipelinedEpochEmpty(t *testing.T) {
	gv, ids := buildClassGraph(t, 20, 2)
	tr := gnn.NewTrainer(gnn.NewModel(8, 8, 2, rand.New(rand.NewSource(1))), gv, 0, 3, 3, 0.01)
	res, err := pipeline.TrainEpoch(tr, tr.SampleBatch, 4, ids[:5], 10, rand.New(rand.NewSource(2)), pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 0 || res.MeanLoss != 0 || res.Epoch != 4 {
		t.Fatalf("empty epoch = %+v", res)
	}
}

// TestPipelineOverlapsLatency injects per-call view latency and checks the
// prefetch pipeline actually hides it: a multi-worker pipelined epoch must
// run well under the synchronous epoch's wall-clock.
func TestPipelineOverlapsLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	gv, ids := buildClassGraph(t, 160, 2)
	const delay = 4 * time.Millisecond // 3 view calls per batch → ≥12ms/batch sampling cost
	slow := view.WithLatency(gv, delay)
	syncTr := gnn.NewTrainer(gnn.NewModel(8, 8, 2, rand.New(rand.NewSource(3))), slow, 0, 3, 3, 0.02)
	pipeTr := gnn.NewTrainer(gnn.NewModel(8, 8, 2, rand.New(rand.NewSource(3))), slow, 0, 3, 3, 0.02)

	start := time.Now()
	if _, err := syncTr.TrainEpoch(0, ids, 16, rand.New(rand.NewSource(4))); err != nil {
		t.Fatal(err)
	}
	syncDur := time.Since(start)

	var m pipeline.Metrics
	start = time.Now()
	if _, err := pipeline.TrainEpoch(pipeTr, pipeTr.SampleBatch, 0, ids, 16,
		rand.New(rand.NewSource(4)), pipeline.Config{Depth: 8, Workers: 4, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	pipeDur := time.Since(start)

	t.Logf("sync=%s pipelined=%s (%.1fx) metrics: %s",
		syncDur, pipeDur, float64(syncDur)/float64(pipeDur), m.Snapshot())
	if pipeDur >= syncDur*8/10 {
		t.Fatalf("pipeline did not overlap latency: sync %s vs pipelined %s", syncDur, pipeDur)
	}
}

// BenchmarkEpoch compares synchronous and pipelined epochs under injected
// per-call sampling latency (the remote-cluster regime the pipeline
// exists for). Run with -bench Epoch -benchtime 3x.
func BenchmarkEpoch(b *testing.B) {
	gv, ids := buildClassGraph(b, 320, 2)
	const delay = 2 * time.Millisecond
	slow := view.WithLatency(gv, delay)
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"sync", 0}, {"pipelined-w1", 1}, {"pipelined-w4", 4},
	} {
		b.Run(fmt.Sprintf("%s/delay=%s", cfg.name, delay), func(b *testing.B) {
			tr := gnn.NewTrainer(gnn.NewModel(8, 8, 2, rand.New(rand.NewSource(3))), slow, 0, 3, 3, 0.02)
			rng := rand.New(rand.NewSource(4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if cfg.workers == 0 {
					_, err = tr.TrainEpoch(i, ids, 32, rng)
				} else {
					_, err = pipeline.TrainEpoch(tr, tr.SampleBatch, i, ids, 32, rng,
						pipeline.Config{Depth: 2 * cfg.workers, Workers: cfg.workers})
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
