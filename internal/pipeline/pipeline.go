// Package pipeline overlaps mini-batch preparation with training compute:
// a bounded, double-buffered prefetcher that runs seed batching → multi-hop
// sampling → feature/label fetch → tensor assembly ahead of the consumer,
// so remote sampling and feature-pull latency (the dominant cost against a
// sharded cluster) hides behind the previous batch's forward/backward pass.
//
// Batches are delivered strictly in submission order regardless of worker
// count: worker w builds batches w, w+W, w+2W, ... and the deliverer pops
// the per-worker queues round-robin. Batch i is therefore always built by
// the same worker with the same inputs — with a single worker the pipeline
// is fully deterministic and produces exactly the synchronous loop's
// output. Errors propagate in order: the failing batch's Result carries the
// error, after which the pipeline shuts down.
package pipeline

import (
	"math/rand"
	"sync"
	"time"

	"platod2gl/internal/gnn"
	"platod2gl/internal/graph"
)

// Loader builds one training batch from its seed set —
// (*gnn.Trainer).SampleBatch and (*gnn.GATTrainer).SampleBatch satisfy it.
type Loader func(seeds []graph.VertexID) (*gnn.Batch, error)

// Config tunes a pipeline run. The zero value means depth 2 (double
// buffering), one worker (deterministic mode), no metrics.
type Config struct {
	// Depth bounds how many batches may be in flight (being built or
	// buffered) beyond the one the consumer holds; it is split evenly across
	// workers, rounding up to ceil(Depth/Workers) per worker. Default 2.
	Depth int
	// Workers is the number of concurrent batch builders. Default 1, which
	// guarantees batches are built in exactly the synchronous loop's order.
	// Depth is raised to Workers when smaller, so every worker can make
	// progress.
	Workers int
	// Retries is how many extra build attempts a failed batch gets before
	// its error is delivered in order. Transient storage errors (a shard
	// flapping, a timed-out fan-out) then cost a rebuild instead of the
	// epoch. Default 0: first failure is final.
	Retries int
	// BatchBudget caps the total wall clock one batch may spend across all
	// of its build attempts. Once exceeded, remaining retries are forfeited
	// and the last error is delivered in order — under cluster overload the
	// prefetcher degrades to the caller's budget instead of multiplying the
	// shed traffic by Retries. Zero means no cap (the default).
	BatchBudget time.Duration
	// Metrics, if set, receives prefetch-hit/stall counters (may be shared
	// across epochs and published via expvar).
	Metrics *Metrics
}

func (c Config) withDefaults() Config {
	if c.Depth <= 0 {
		c.Depth = 2
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Depth < c.Workers {
		c.Depth = c.Workers
	}
	return c
}

// Result is one prefetched batch, or the error that ended the run.
type Result struct {
	Index int
	Seeds []graph.VertexID
	Batch *gnn.Batch
	Err   error

	builtAt time.Time // when the worker finished building, for queue-wait timing
}

// Pipeline is one bounded prefetch run over a fixed list of seed batches.
type Pipeline struct {
	out      chan Result
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	metrics  *Metrics
}

// Run starts prefetching batches for every seed set in seedBatches.
// Consume with Next (or C) until exhaustion, and always call Stop when done
// — it is the idempotent cleanup that releases workers after early exits.
func Run(seedBatches [][]graph.VertexID, load Loader, cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	p := &Pipeline{
		out:     make(chan Result),
		stop:    make(chan struct{}),
		metrics: cfg.Metrics,
	}
	n := len(seedBatches)
	// Each worker gets a private token budget, refilled when the consumer
	// takes one of ITS batches: worker w may run ceil(Depth/W) batches ahead
	// of its last delivered one, bounding total in-flight work at ~Depth. The
	// budget must be per-worker — with a shared pool a fast worker can drain
	// every token while the worker owning the round-robin's next index
	// starves, deadlocking the in-order deliverer.
	budget := (cfg.Depth + cfg.Workers - 1) / cfg.Workers
	// Per-worker result queues; index i lives at queue i%W position i/W, so
	// round-robin popping restores global order. Queue capacity matches the
	// token budget, so a worker holding a token never blocks on the enqueue.
	queues := make([]chan Result, cfg.Workers)
	tokens := make([]chan struct{}, cfg.Workers)
	for w := range queues {
		queues[w] = make(chan Result, budget)
		tokens[w] = make(chan struct{}, budget)
		for i := 0; i < budget; i++ {
			tokens[w] <- struct{}{}
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		p.wg.Add(1)
		go func(w int) {
			defer p.wg.Done()
			defer close(queues[w])
			for i := w; i < n; i += cfg.Workers {
				select {
				case <-p.stop:
					return
				case <-tokens[w]:
				}
				var b *gnn.Batch
				var err error
				firstAttempt := time.Now()
				for attempt := 0; ; attempt++ {
					start := time.Now()
					b, err = load(seedBatches[i])
					p.metrics.addBuild(time.Since(start))
					if err == nil || attempt >= cfg.Retries {
						break
					}
					if cfg.BatchBudget > 0 && time.Since(firstAttempt) >= cfg.BatchBudget {
						break
					}
					p.metrics.incBatchRetry()
					// A halted pipeline must not burn the remaining budget.
					select {
					case <-p.stop:
						return
					default:
					}
				}
				if err != nil {
					p.metrics.incBatchFailure()
				}
				select {
				case <-p.stop:
					return
				case queues[w] <- Result{Index: i, Seeds: seedBatches[i], Batch: b, Err: err, builtAt: time.Now()}:
				}
			}
		}(w)
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(p.out)
		for i := 0; i < n; i++ {
			var r Result
			var ok bool
			select {
			case <-p.stop:
				return
			case r, ok = <-queues[i%cfg.Workers]:
				if !ok {
					return
				}
			}
			select {
			case <-p.stop:
				return
			case p.out <- r:
				p.metrics.observeWait(r.builtAt)
				// Return the token to the worker that built this batch; its
				// budget is bounded relative to its own delivered batches.
				tokens[i%cfg.Workers] <- struct{}{}
			}
			if r.Err != nil {
				// Deliver the failure in order, then halt the workers: the
				// consumer sees exactly the batches before the error, the
				// error, and a closed channel.
				p.halt()
				return
			}
		}
	}()
	return p
}

// C exposes the in-order result stream; it closes after the last batch or
// the first delivered error.
func (p *Pipeline) C() <-chan Result { return p.out }

// Next returns the next batch in order, recording whether it was already
// prefetched (hit) or the consumer had to stall waiting for it.
func (p *Pipeline) Next() (Result, bool) {
	select {
	case r, ok := <-p.out:
		if ok {
			p.metrics.incHit()
		}
		return r, ok
	default:
	}
	start := time.Now()
	r, ok := <-p.out
	if ok {
		p.metrics.addStall(time.Since(start))
	}
	return r, ok
}

// halt signals all goroutines to exit without waiting for them.
func (p *Pipeline) halt() {
	p.stopOnce.Do(func() { close(p.stop) })
}

// Close abandons the run without blocking: every worker and the deliverer is
// signalled to exit as soon as its current batch build returns. Use it when
// the consumer stops reading mid-stream (an interrupted epoch, an early
// return) and must not wait out an in-flight build the way Stop does; a
// later Stop still provides the happens-after barrier. Idempotent.
func (p *Pipeline) Close() { p.halt() }

// Stop cancels any remaining prefetch work and waits for the pipeline's
// goroutines to exit. Idempotent; safe after full consumption, early exit,
// or a delivered error. Must not be called from the same goroutine that is
// still consuming results only if that goroutine abandoned the channel —
// i.e. just call it (or defer it) once consumption is over.
func (p *Pipeline) Stop() {
	p.halt()
	p.wg.Wait()
}

// SeedBatches shuffles seeds with rng and cuts them into consecutive
// batchSize chunks, dropping the remainder — exactly the order
// (*gnn.Trainer).TrainEpoch visits, so a pipelined epoch over the same rng
// state trains on identical mini-batches.
func SeedBatches(seeds []graph.VertexID, batchSize int, rng *rand.Rand) [][]graph.VertexID {
	if batchSize <= 0 {
		return nil
	}
	perm := rng.Perm(len(seeds))
	var out [][]graph.VertexID
	for lo := 0; lo+batchSize <= len(perm); lo += batchSize {
		batch := make([]graph.VertexID, batchSize)
		for i := 0; i < batchSize; i++ {
			batch[i] = seeds[perm[lo+i]]
		}
		out = append(out, batch)
	}
	return out
}

// Stepper consumes prepared batches — gnn.Trainer and gnn.GATTrainer both
// satisfy it.
type Stepper interface {
	TrainStep(*gnn.Batch) float64
}

// TrainEpoch runs one pipelined training epoch: seed batches are prefetched
// (sampled + features fetched + tensors assembled) cfg.Depth ahead by
// cfg.Workers concurrent builders while t.TrainStep consumes them in order.
// It mirrors (*gnn.Trainer).TrainEpoch's semantics — same shuffle, same
// batch composition, mean loss over full batches — and with Workers=1 its
// result is bit-identical to the synchronous loop's.
func TrainEpoch(t Stepper, load Loader, epoch int, seeds []graph.VertexID, batchSize int, rng *rand.Rand, cfg Config) (gnn.EpochResult, error) {
	p := Run(SeedBatches(seeds, batchSize, rng), load, cfg)
	defer p.Stop()
	totalLoss := 0.0
	batches := 0
	for {
		r, ok := p.Next()
		if !ok {
			break
		}
		if r.Err != nil {
			return gnn.EpochResult{Epoch: epoch}, r.Err
		}
		totalLoss += t.TrainStep(r.Batch)
		batches++
	}
	if batches == 0 {
		return gnn.EpochResult{Epoch: epoch}, nil
	}
	return gnn.EpochResult{Epoch: epoch, MeanLoss: totalLoss / float64(batches), Batches: batches}, nil
}
