package ann

import (
	"expvar"

	"platod2gl/internal/obs"
)

// Metrics counts index mutations and queries. All methods are nil-safe so an
// unmetered index pays nothing. Size and tombstone gauges are registered by
// the embedding owner via Registry.GaugeFunc over Index.Len/Tombstones (the
// index itself already tracks them; a second copy here would drift).
type Metrics struct {
	Inserts     obs.Counter // vectors inserted or upserted
	Deletes     obs.Counter // tombstone operations
	Searches    obs.Counter // Search calls served
	Compactions obs.Counter // full graph rebuilds (manual + automatic)
}

// MetricsSnapshot is a plain-value copy for printing and JSON encoding.
type MetricsSnapshot struct {
	Inserts     int64
	Deletes     int64
	Searches    int64
	Compactions int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		Inserts:     m.Inserts.Load(),
		Deletes:     m.Deletes.Load(),
		Searches:    m.Searches.Load(),
		Compactions: m.Compactions.Load(),
	}
}

// Expvar exposes the counters as one JSON object.
func (m *Metrics) Expvar() expvar.Var {
	return expvar.Func(func() any { return m.Snapshot() })
}

// Register attaches the counters to r under the stable platod2gl_ann_*
// names documented in docs/OPERATIONS.md.
func (m *Metrics) Register(r *obs.Registry) {
	if m == nil {
		return
	}
	r.RegisterCounter("platod2gl_ann_inserts_total", "Vectors inserted or upserted into the HNSW index.", nil, &m.Inserts)
	r.RegisterCounter("platod2gl_ann_deletes_total", "Vectors tombstoned in the HNSW index.", nil, &m.Deletes)
	r.RegisterCounter("platod2gl_ann_searches_total", "k-NN searches served by the HNSW index.", nil, &m.Searches)
	r.RegisterCounter("platod2gl_ann_compactions_total", "Full HNSW graph rebuilds (manual and tombstone-triggered).", nil, &m.Compactions)
}

func (m *Metrics) incInsert() {
	if m != nil {
		m.Inserts.Add(1)
	}
}

func (m *Metrics) incDelete() {
	if m != nil {
		m.Deletes.Add(1)
	}
}

func (m *Metrics) incSearch() {
	if m != nil {
		m.Searches.Add(1)
	}
}

func (m *Metrics) incCompaction() {
	if m != nil {
		m.Compactions.Add(1)
	}
}
