package ann

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentInsertSearchDeleteHammer is the race hammer the CI race leg
// runs: inserters, deleters, upserters, and searchers pound one index
// concurrently. Correctness here is "no race, no panic, invariants hold";
// recall under concurrent mutation is covered by the serving churn drill.
func TestConcurrentInsertSearchDeleteHammer(t *testing.T) {
	const (
		dim        = 8
		idSpace    = 512
		opsPerGoro = 400
	)
	ix, err := New(Config{Dim: dim, Seed: 23, M: 8, EfConstruction: 40, EfSearch: 24, MaxTombstoneShare: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	mkVec := func(rng *rand.Rand) []float32 {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		return v
	}
	// Seed the index so searchers have something to find from the start.
	seedRng := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		if err := ix.Insert(uint64(i), mkVec(seedRng)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var searches, withResults atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerGoro; i++ {
				if err := ix.Insert(uint64(rng.Intn(idSpace)), mkVec(rng)); err != nil {
					panic(err)
				}
			}
		}(int64(100 + w))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerGoro; i++ {
				ix.Delete(uint64(rng.Intn(idSpace)))
			}
		}(int64(200 + w))
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerGoro; i++ {
				res, err := ix.Search(mkVec(rng), 5)
				if err != nil {
					panic(err)
				}
				searches.Add(1)
				if len(res) > 0 {
					withResults.Add(1)
				}
				for j := 1; j < len(res); j++ {
					if res[j].Dist < res[j-1].Dist {
						panic("search results out of order")
					}
				}
			}
		}(int64(300 + w))
	}
	wg.Wait()

	if searches.Load() == 0 || withResults.Load() == 0 {
		t.Fatalf("hammer did no useful work: %d searches, %d with results", searches.Load(), withResults.Load())
	}
	if n := ix.Len(); n < 0 || n > idSpace {
		t.Fatalf("Len() = %d outside [0, %d]", n, idSpace)
	}
	// The index must still answer correctly after the storm: every live ID's
	// own vector must retrieve itself as the top hit. (Snapshot the live set
	// first — searching from inside ForEach would nest read locks.)
	type item struct {
		id  uint64
		vec []float32
	}
	var live []item
	ix.ForEach(func(id uint64, vec []float32) bool {
		live = append(live, item{id, append([]float32(nil), vec...)})
		return len(live) < 50
	})
	if len(live) == 0 {
		t.Fatal("no live vectors to verify after hammer")
	}
	// HNSW is approximate, so tolerate a stray miss — but the overwhelming
	// majority must self-retrieve or the graph got mangled.
	hits := 0
	for _, it := range live {
		res, err := ix.Search(it.vec, 1)
		if err != nil {
			t.Fatalf("post-hammer search: %v", err)
		}
		// A different ID at distance 0 is fine (duplicate vectors).
		if len(res) > 0 && (res[0].ID == it.id || res[0].Dist == 0) {
			hits++
		}
	}
	if hits*10 < len(live)*9 {
		t.Fatalf("post-hammer self-retrieval %d/%d, want >= 90%%", hits, len(live))
	}
}
