package ann

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// clusteredVecs generates n vectors in dim dimensions drawn from k Gaussian
// clusters — the geometry GNN embeddings actually have (classes collapse
// into clusters), and the one naive-link HNSW variants lose recall on.
func clusteredVecs(n, dim, k int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, k)
	for c := range centers {
		centers[c] = make([]float32, dim)
		for i := range centers[c] {
			centers[c][i] = float32(rng.NormFloat64() * 4)
		}
	}
	out := make([][]float32, n)
	for i := range out {
		c := centers[i%k]
		v := make([]float32, dim)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64())
		}
		out[i] = v
	}
	return out
}

// bruteKNN is the exact oracle: all live ids sorted by squared L2 distance.
func bruteKNN(corpus map[uint64][]float32, q []float32, k int) []uint64 {
	type pair struct {
		id   uint64
		dist float32
	}
	all := make([]pair, 0, len(corpus))
	for id, v := range corpus {
		all = append(all, pair{id, sqDist(q, v)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].dist != all[j].dist {
			return all[i].dist < all[j].dist
		}
		return all[i].id < all[j].id
	})
	if len(all) > k {
		all = all[:k]
	}
	ids := make([]uint64, len(all))
	for i, p := range all {
		ids[i] = p.id
	}
	return ids
}

func recallAt(t *testing.T, ix *Index, corpus map[uint64][]float32, queries [][]float32, k int) float64 {
	t.Helper()
	hits, total := 0, 0
	for _, q := range queries {
		truth := bruteKNN(corpus, q, k)
		got, err := ix.Search(q, k)
		if err != nil {
			t.Fatalf("search: %v", err)
		}
		want := make(map[uint64]bool, len(truth))
		for _, id := range truth {
			want[id] = true
		}
		for _, r := range got {
			if want[r.ID] {
				hits++
			}
		}
		total += len(truth)
	}
	return float64(hits) / float64(total)
}

// TestConformanceRecallAt10 is the fuzz-adjacent conformance gate: at a
// pinned size and seed, the index must agree with the brute-force oracle on
// at least 95% of top-10 results.
func TestConformanceRecallAt10(t *testing.T) {
	const (
		n    = 2000
		dim  = 32
		k    = 10
		seed = 7
	)
	vecs := clusteredVecs(n, dim, 16, seed)
	ix, err := New(Config{Dim: dim, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	corpus := make(map[uint64][]float32, n)
	for i, v := range vecs {
		if err := ix.Insert(uint64(i), v); err != nil {
			t.Fatal(err)
		}
		corpus[uint64(i)] = v
	}
	rng := rand.New(rand.NewSource(seed + 1))
	queries := make([][]float32, 200)
	for i := range queries {
		base := vecs[rng.Intn(n)]
		q := make([]float32, dim)
		for j := range q {
			q[j] = base[j] + float32(rng.NormFloat64()*0.25)
		}
		queries[i] = q
	}
	if r := recallAt(t, ix, corpus, queries, k); r < 0.95 {
		t.Fatalf("recall@%d = %.3f, want >= 0.95", k, r)
	}
}

// TestDeterministicSearch proves run-to-run reproducibility: the same
// insertion sequence under the same seed yields byte-identical search
// results (the level generator is a pure function of seed and ID, and the
// link heuristic is deterministic).
func TestDeterministicSearch(t *testing.T) {
	const (
		n   = 800
		dim = 16
	)
	vecs := clusteredVecs(n, dim, 8, 3)
	build := func() *Index {
		ix, err := New(Config{Dim: dim, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vecs {
			if err := ix.Insert(uint64(i), v); err != nil {
				t.Fatal(err)
			}
		}
		return ix
	}
	a, b := build(), build()
	rng := rand.New(rand.NewSource(5))
	for qi := 0; qi < 50; qi++ {
		q := vecs[rng.Intn(n)]
		ra, err := a.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(ra) != len(rb) {
			t.Fatalf("query %d: %d vs %d results", qi, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("query %d rank %d: %+v vs %+v", qi, i, ra[i], rb[i])
			}
		}
	}
}

// TestDeleteAndCompact covers the tombstone lifecycle: deleted IDs never
// come back from Search, recall over the survivors holds, the automatic
// compaction fires once tombstones dominate, and results survive it.
func TestDeleteAndCompact(t *testing.T) {
	const (
		n   = 600
		dim = 16
		k   = 10
	)
	m := &Metrics{}
	vecs := clusteredVecs(n, dim, 8, 17)
	ix, err := New(Config{Dim: dim, Seed: 17, MaxTombstoneShare: 0.35, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	corpus := make(map[uint64][]float32, n)
	for i, v := range vecs {
		if err := ix.Insert(uint64(i), v); err != nil {
			t.Fatal(err)
		}
		corpus[uint64(i)] = v
	}
	// Delete 40% — past MaxTombstoneShare relative to the arena only near
	// the end, so searches run against a tombstone-heavy graph first.
	deleted := make(map[uint64]bool)
	for i := 0; i < n; i += 5 {
		for j := 0; j < 2; j++ {
			id := uint64(i + j)
			if ix.Delete(id) {
				deleted[id] = true
				delete(corpus, id)
			}
		}
		q := vecs[(i+3)%n]
		got, err := ix.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range got {
			if deleted[r.ID] {
				t.Fatalf("deleted id %d returned from search", r.ID)
			}
		}
	}
	if m.Compactions.Load() == 0 {
		t.Fatalf("expected automatic compaction after %d deletes (tombstones now %d)", len(deleted), ix.Tombstones())
	}
	if got, want := ix.Len(), len(corpus); got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	rng := rand.New(rand.NewSource(99))
	queries := make([][]float32, 100)
	for i := range queries {
		for {
			id := uint64(rng.Intn(n))
			if v, ok := corpus[id]; ok {
				queries[i] = v
				break
			}
		}
	}
	if r := recallAt(t, ix, corpus, queries, k); r < 0.9 {
		t.Fatalf("post-delete recall@%d = %.3f, want >= 0.9", k, r)
	}
}

// TestUpsertReplacesVector covers the refresher's primary operation:
// re-inserting an existing ID moves it to the new embedding.
func TestUpsertReplacesVector(t *testing.T) {
	const dim = 8
	ix, err := New(Config{Dim: dim, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(fill float32) []float32 {
		v := make([]float32, dim)
		for i := range v {
			v[i] = fill
		}
		return v
	}
	for i := 0; i < 50; i++ {
		if err := ix.Insert(uint64(i), mk(float32(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Insert(3, mk(100)); err != nil {
		t.Fatal(err)
	}
	if got, _ := ix.Vector(3); got[0] != 100 {
		t.Fatalf("Vector(3)[0] = %v after upsert, want 100", got[0])
	}
	if ix.Len() != 50 {
		t.Fatalf("Len() = %d after upsert, want 50", ix.Len())
	}
	res, err := ix.Search(mk(100), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 3 {
		t.Fatalf("search near new position: %+v, want id 3", res)
	}
	res, err = ix.Search(mk(3), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID == 3 && r.Dist < 1e-6 {
			t.Fatalf("stale vector for id 3 still resident: %+v", res)
		}
	}
}

// TestEmptyAndErrors covers the degenerate paths.
func TestEmptyAndErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted Dim 0")
	}
	ix, err := New(Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := ix.Search([]float32{0, 0, 0, 0}, 5); err != nil || len(res) != 0 {
		t.Fatalf("empty-index search: %v, %v", res, err)
	}
	if _, err := ix.Search([]float32{1}, 5); err == nil {
		t.Fatal("dim-mismatched query accepted")
	}
	if err := ix.Insert(1, []float32{1}); err == nil {
		t.Fatal("dim-mismatched insert accepted")
	}
	if ix.Delete(42) {
		t.Fatal("Delete on missing id reported true")
	}
	if err := ix.Insert(1, []float32{1, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	res, err := ix.Search([]float32{1, 0, 0, 0}, 3)
	if err != nil || len(res) != 1 || res[0].ID != 1 {
		t.Fatalf("single-element search: %v, %v", res, err)
	}
	if math.IsNaN(float64(res[0].Dist)) {
		t.Fatal("NaN distance")
	}
}
