// Package ann provides the in-process approximate-nearest-neighbor index
// behind the serving tier's k-NN retrieval: a Hierarchical Navigable Small
// World graph (Malkov & Yashunin) over the embeddings the inference engine
// produces. The serving workload is "embed this user, return its top-k
// similar items" under heavy concurrent traffic, so the index is built for
// exactly that shape:
//
//   - Search takes a read lock and walks an append-mostly node arena —
//     concurrent queries never block each other; mutations (insert, delete,
//     compact) take the write lock.
//   - The graph is dynamic (the paper's setting): vertices appear, their
//     embeddings go stale as edges stream in, and the refresher re-embeds
//     them. Insert with an existing ID is therefore an upsert — the old node
//     is tombstoned and a fresh one linked in — and Delete tombstones.
//     Tombstoned nodes keep routing searches (removing their links would
//     sever the small-world graph) but are never returned; Compact rebuilds
//     the arena from the live set once tombstones pass a configurable share.
//   - Levels come from a deterministic generator seeded per (Config.Seed,
//     ID), not a shared RNG: the same ID always lands on the same level
//     regardless of insertion order or interleaving, so tests and the bench
//     gate see reproducible graphs.
//
// Distance is squared L2. The inference engine L2-normalizes embeddings, so
// ranking is equivalent to cosine similarity on its output.
package ann

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Config tunes an Index. Zero values take the documented defaults.
type Config struct {
	// Dim is the embedding dimensionality. Required.
	Dim int
	// M is the per-node link budget on upper levels (level 0 gets 2M).
	// Default 16.
	M int
	// EfConstruction is the candidate-list width while linking an insert.
	// Default 200.
	EfConstruction int
	// EfSearch is the candidate-list width during Search (raised to k when
	// k is larger). Default 64.
	EfSearch int
	// Seed drives the deterministic level generator.
	Seed int64
	// MaxTombstoneShare triggers an automatic Compact when tombstoned nodes
	// exceed this share of the arena. <= 0 means 0.5.
	MaxTombstoneShare float64
	// Metrics, if set, receives insert/delete/search/compaction counters.
	Metrics *Metrics
}

func (c Config) withDefaults() Config {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	if c.MaxTombstoneShare <= 0 {
		c.MaxTombstoneShare = 0.5
	}
	return c
}

// Result is one search hit.
type Result struct {
	ID   uint64
	Dist float32 // squared L2 distance to the query
}

// node is one arena entry. links[l] holds the neighbor arena offsets at
// level l; a dead node keeps its links (routing) but is never returned.
type node struct {
	id    uint64
	vec   []float32
	links [][]uint32
	dead  bool
}

// Index is a thread-safe HNSW graph. The zero value is not usable — call
// New.
type Index struct {
	mu  sync.RWMutex
	cfg Config
	mL  float64

	nodes      []node
	byID       map[uint64]uint32
	entry      int32 // arena offset of the entry point, -1 when empty
	maxLevel   int
	tombstones int
}

// New returns an empty index for cfg.Dim-dimensional vectors.
func New(cfg Config) (*Index, error) {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("ann: Config.Dim must be positive, got %d", cfg.Dim)
	}
	return &Index{
		cfg:   cfg,
		mL:    1 / math.Log(float64(cfg.M)),
		byID:  make(map[uint64]uint32),
		entry: -1,
	}, nil
}

// splitmix64 is the level generator's bit mixer: a full-avalanche hash so
// consecutive IDs land on independent levels.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// levelFor draws the node's level from the standard exponential distribution
// (floor(-ln(U) * mL)), with U derived from (seed, id) so the level is a
// pure function of the ID — insertion order never changes the graph shape.
func (ix *Index) levelFor(id uint64) int {
	u := splitmix64(uint64(ix.cfg.Seed) ^ splitmix64(id))
	// Top 53 bits to a float in (0, 1]; the +1 keeps u away from 0 so the
	// log stays finite.
	f := (float64(u>>11) + 1) / (1 << 53)
	l := int(-math.Log(f) * ix.mL)
	const maxLevel = 30
	if l > maxLevel {
		l = maxLevel
	}
	return l
}

// sqDist returns the squared L2 distance between two equal-length vectors.
func sqDist(a, b []float32) float32 {
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// cand is one (node, distance) pair in a search frontier.
type cand struct {
	ref  uint32
	dist float32
}

// candHeap is a min-heap by distance (closest first) over cands, inlined
// rather than container/heap to keep the search hot path allocation-free.
type candHeap []cand

func (h *candHeap) push(c cand) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].dist <= (*h)[i].dist {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *candHeap) pop() cand {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h)[l].dist < (*h)[small].dist {
			small = l
		}
		if r < n && (*h)[r].dist < (*h)[small].dist {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// farthest returns the index of the farthest element (linear scan; the
// result set is at most ef entries).
func farthest(set []cand) int {
	fi := 0
	for i := 1; i < len(set); i++ {
		if set[i].dist > set[fi].dist {
			fi = i
		}
	}
	return fi
}

// greedyDescend walks one level greedily from ep toward q, returning the
// closest node found. Used on the levels above the search/insert target.
func (ix *Index) greedyDescend(q []float32, ep uint32, level int) uint32 {
	cur := ep
	curDist := sqDist(q, ix.nodes[cur].vec)
	for {
		improved := false
		for _, nb := range ix.nodes[cur].links[level] {
			if d := sqDist(q, ix.nodes[nb].vec); d < curDist {
				cur, curDist = nb, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is the best-first beam search of the paper: expand the closest
// unexpanded candidate until the frontier cannot improve the worst of the ef
// best found. Tombstoned nodes participate (routing) and are filtered by the
// caller. visited is a caller-provided scratch slice at least len(nodes)
// long, reset lazily via the epoch value.
func (ix *Index) searchLayer(q []float32, ep uint32, ef, level int, visited []uint32, epoch uint32) []cand {
	var frontier candHeap
	d0 := sqDist(q, ix.nodes[ep].vec)
	frontier.push(cand{ep, d0})
	visited[ep] = epoch
	best := []cand{{ep, d0}}
	for len(frontier) > 0 {
		c := frontier.pop()
		worst := best[farthest(best)].dist
		if c.dist > worst && len(best) >= ef {
			break
		}
		for _, nb := range ix.nodes[c.ref].links[level] {
			if visited[nb] == epoch {
				continue
			}
			visited[nb] = epoch
			d := sqDist(q, ix.nodes[nb].vec)
			if len(best) < ef {
				best = append(best, cand{nb, d})
				frontier.push(cand{nb, d})
			} else if fi := farthest(best); d < best[fi].dist {
				best[fi] = cand{nb, d}
				frontier.push(cand{nb, d})
			}
		}
	}
	return best
}

// selectNeighbors applies the paper's heuristic pruning: walk candidates
// closest-first and keep one only if it is closer to the query than to every
// neighbor already kept. This spreads links across clusters instead of
// packing them into the nearest one, which is what keeps recall high on
// clustered embeddings.
func (ix *Index) selectNeighbors(cands []cand, m int) []uint32 {
	sort.Slice(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	out := make([]uint32, 0, m)
	for _, c := range cands {
		if len(out) >= m {
			break
		}
		keep := true
		for _, sel := range out {
			if sqDist(ix.nodes[c.ref].vec, ix.nodes[sel].vec) < c.dist {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c.ref)
		}
	}
	// Backfill with the closest rejected candidates so nodes keep a full
	// link budget even in degenerate geometries.
	for _, c := range cands {
		if len(out) >= m {
			break
		}
		dup := false
		for _, sel := range out {
			if sel == c.ref {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c.ref)
		}
	}
	return out
}

// maxLinks is the per-level link cap: 2M on the ground level, M above.
func (ix *Index) maxLinks(level int) int {
	if level == 0 {
		return 2 * ix.cfg.M
	}
	return ix.cfg.M
}

// shrinkLinks re-prunes a node's level links to the cap after a new
// bidirectional edge pushed it over.
func (ix *Index) shrinkLinks(ref uint32, level int) {
	nd := &ix.nodes[ref]
	limit := ix.maxLinks(level)
	if len(nd.links[level]) <= limit {
		return
	}
	cands := make([]cand, 0, len(nd.links[level]))
	for _, nb := range nd.links[level] {
		cands = append(cands, cand{nb, sqDist(nd.vec, ix.nodes[nb].vec)})
	}
	nd.links[level] = ix.selectNeighbors(cands, limit)
}

// Insert adds (or upserts) id with the given vector. The vector is copied.
func (ix *Index) Insert(id uint64, vec []float32) error {
	if len(vec) != ix.cfg.Dim {
		return fmt.Errorf("ann: vector for id %d has dim %d, index expects %d", id, len(vec), ix.cfg.Dim)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if old, ok := ix.byID[id]; ok {
		ix.nodes[old].dead = true
		ix.tombstones++
	}
	ix.insertLocked(id, append([]float32(nil), vec...))
	ix.cfg.Metrics.incInsert()
	ix.maybeCompactLocked()
	return nil
}

// insertLocked links a fresh node into the graph. Caller holds the write
// lock and has already handled any previous node under the same ID.
func (ix *Index) insertLocked(id uint64, vec []float32) {
	level := ix.levelFor(id)
	ref := uint32(len(ix.nodes))
	links := make([][]uint32, level+1)
	ix.nodes = append(ix.nodes, node{id: id, vec: vec, links: links})
	ix.byID[id] = ref

	if ix.entry < 0 {
		ix.entry = int32(ref)
		ix.maxLevel = level
		return
	}
	ep := uint32(ix.entry)
	for lc := ix.maxLevel; lc > level; lc-- {
		ep = ix.greedyDescend(vec, ep, lc)
	}
	visited := make([]uint32, len(ix.nodes))
	top := level
	if ix.maxLevel < top {
		top = ix.maxLevel
	}
	for lc := top; lc >= 0; lc-- {
		cands := ix.searchLayer(vec, ep, ix.cfg.EfConstruction, lc, visited, uint32(lc)+1)
		neighbors := ix.selectNeighbors(cands, ix.cfg.M)
		ix.nodes[ref].links[lc] = neighbors
		for _, nb := range neighbors {
			ix.nodes[nb].links[lc] = append(ix.nodes[nb].links[lc], ref)
			ix.shrinkLinks(nb, lc)
		}
		// Continue the descent from the best candidate of this level.
		bi := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].dist < cands[bi].dist {
				bi = i
			}
		}
		ep = cands[bi].ref
	}
	if level > ix.maxLevel {
		ix.maxLevel = level
		ix.entry = int32(ref)
	}
}

// Delete tombstones id. Reports whether the ID was present.
func (ix *Index) Delete(id uint64) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ref, ok := ix.byID[id]
	if !ok {
		return false
	}
	delete(ix.byID, id)
	ix.nodes[ref].dead = true
	ix.tombstones++
	ix.cfg.Metrics.incDelete()
	ix.maybeCompactLocked()
	return true
}

// Contains reports whether id is live in the index.
func (ix *Index) Contains(id uint64) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.byID[id]
	return ok
}

// Search returns the k nearest live vectors to q, closest first.
func (ix *Index) Search(q []float32, k int) ([]Result, error) {
	if len(q) != ix.cfg.Dim {
		return nil, fmt.Errorf("ann: query has dim %d, index expects %d", len(q), ix.cfg.Dim)
	}
	if k <= 0 {
		return nil, nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.cfg.Metrics.incSearch()
	if ix.entry < 0 {
		return nil, nil
	}
	ep := uint32(ix.entry)
	for lc := ix.maxLevel; lc > 0; lc-- {
		ep = ix.greedyDescend(q, ep, lc)
	}
	ef := ix.cfg.EfSearch
	if ef < k {
		ef = k
	}
	// Tombstones route but never land in results, so widen the beam enough
	// to see past them.
	if t := ix.tombstones; t > 0 {
		bonus := t
		if bonus > ef {
			bonus = ef
		}
		ef += bonus
	}
	visited := make([]uint32, len(ix.nodes))
	best := ix.searchLayer(q, ep, ef, 0, visited, 1)
	out := make([]Result, 0, k)
	sort.Slice(best, func(i, j int) bool { return best[i].dist < best[j].dist })
	for _, c := range best {
		if ix.nodes[c.ref].dead {
			continue
		}
		out = append(out, Result{ID: ix.nodes[c.ref].id, Dist: c.dist})
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// Vector returns a copy of the live vector stored under id.
func (ix *Index) Vector(id uint64) ([]float32, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ref, ok := ix.byID[id]
	if !ok {
		return nil, false
	}
	return append([]float32(nil), ix.nodes[ref].vec...), true
}

// ForEach visits every live (id, vector) pair under the read lock until fn
// returns false. The vector slice is the index's own storage — callers must
// not retain or mutate it.
func (ix *Index) ForEach(fn func(id uint64, vec []float32) bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for i := range ix.nodes {
		if ix.nodes[i].dead {
			continue
		}
		if !fn(ix.nodes[i].id, ix.nodes[i].vec) {
			return
		}
	}
}

// Len returns the number of live vectors.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.byID)
}

// Tombstones returns the number of dead arena entries awaiting compaction.
func (ix *Index) Tombstones() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tombstones
}

// Compact rebuilds the graph from the live set, dropping tombstones. O(n)
// memory and a full re-link; call it from maintenance paths (the index also
// self-compacts when tombstones exceed Config.MaxTombstoneShare).
func (ix *Index) Compact() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.compactLocked()
}

// maybeCompactLocked self-compacts once tombstones dominate the arena.
func (ix *Index) maybeCompactLocked() {
	if ix.tombstones == 0 {
		return
	}
	if float64(ix.tombstones) > ix.cfg.MaxTombstoneShare*float64(len(ix.nodes)) {
		ix.compactLocked()
	}
}

func (ix *Index) compactLocked() {
	if ix.tombstones == 0 {
		return
	}
	old := ix.nodes
	ix.nodes = make([]node, 0, len(ix.byID))
	ix.byID = make(map[uint64]uint32, len(ix.byID))
	ix.entry = -1
	ix.maxLevel = 0
	ix.tombstones = 0
	// Deterministic levels make the rebuild shape independent of the
	// original insertion interleaving.
	for i := range old {
		if old[i].dead {
			continue
		}
		ix.insertLocked(old[i].id, old[i].vec)
	}
	ix.cfg.Metrics.incCompaction()
}
