package platogl

import (
	"testing"

	"platod2gl/internal/graph"
	"platod2gl/internal/storage"
	"platod2gl/internal/storetest"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, func() storage.TopologyStore { return New(Options{}) })
}

func TestConformanceSmallBlocks(t *testing.T) {
	storetest.Run(t, func() storage.TopologyStore { return New(Options{BlockCap: 4}) })
}

func TestBlockChainGrowth(t *testing.T) {
	s := New(Options{BlockCap: 8})
	for i := uint64(0); i < 100; i++ {
		s.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Weight: 1})
	}
	if s.Degree(1, 0) != 100 {
		t.Fatalf("degree = %d", s.Degree(1, 0))
	}
	ids, weights := s.Neighbors(1, 0)
	if len(ids) != 100 || len(weights) != 100 {
		t.Fatalf("Neighbors = %d/%d", len(ids), len(weights))
	}
	seen := map[graph.VertexID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate neighbor %v", id)
		}
		seen[id] = true
	}
}

func TestFixedBlockSlackDominatesForLowDegree(t *testing.T) {
	// One edge per source: every source still pays a full 64-slot block —
	// the skew-driven blowup the paper's Table IV measures.
	lowDeg := New(Options{})
	highDeg := New(Options{})
	for i := uint64(0); i < 1000; i++ {
		lowDeg.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: 1, Weight: 1})
		highDeg.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Weight: 1})
	}
	if lowDeg.MemoryBytes() <= 2*highDeg.MemoryBytes() {
		t.Fatalf("low-degree store (%d B) should cost far more than high-degree (%d B)",
			lowDeg.MemoryBytes(), highDeg.MemoryBytes())
	}
}

func TestDeleteWithinBlockPreservesLocators(t *testing.T) {
	s := New(Options{BlockCap: 8})
	for i := uint64(0); i < 8; i++ {
		s.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Weight: float64(i) + 1})
	}
	// Delete from the middle: locators of shifted edges must stay valid.
	if !s.DeleteEdge(1, 3, 0) {
		t.Fatal("delete failed")
	}
	for i := uint64(0); i < 8; i++ {
		w, ok := s.EdgeWeight(1, graph.VertexID(i), 0)
		if i == 3 {
			if ok {
				t.Fatal("deleted edge still present")
			}
			continue
		}
		if !ok || w != float64(i)+1 {
			t.Fatalf("edge %d: %v,%v", i, w, ok)
		}
	}
	// Update an edge that was shifted.
	if !s.UpdateWeight(1, 7, 0, 99) {
		t.Fatal("update of shifted edge failed")
	}
	if w, _ := s.EdgeWeight(1, 7, 0); w != 99 {
		t.Fatalf("weight = %v", w)
	}
}

func BenchmarkAddEdge(b *testing.B) {
	s := New(Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddEdge(graph.Edge{Src: graph.VertexID(i % 1000), Dst: graph.VertexID(i), Weight: 1})
	}
}

func BenchmarkInPlaceUpdate(b *testing.B) {
	s := New(Options{})
	const deg = 4096
	for i := 0; i < deg; i++ {
		s.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Weight: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.UpdateWeight(1, graph.VertexID(i%deg), 0, 2)
	}
}
