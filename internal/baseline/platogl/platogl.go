// Package platogl reimplements the storage and sampling layer of PlatoGL
// (CIKM'22, ref. [24]) — the state-of-the-art dynamic baseline the PlatoD2GL
// paper compares against.
//
// PlatoGL stores topology in a block-based key-value store: a source's
// neighbor list is chunked into fixed-capacity blocks, each addressed by a
// composite ⟨source vertex, block sequence, shard, flags⟩ key ("each key
// consists of various information except the unique identifier"). Weighted
// sampling uses Inverse Transform Sampling over a per-source CSTable of
// prefix sums spanning the *whole* neighbor list (Sec. II-B of the
// PlatoD2GL paper: "it needs to update [the] cumulative sum table ... for
// each source vertex", with n being the source's out-neighbor count).
//
// The two weaknesses PlatoD2GL attacks are modeled as the paper describes
// them:
//
//   - Memory: per-block composite keys and hash-index entries, per-edge
//     locator entries (the key-value indexing the paper calls "huge
//     indexing overhead of numerous key-value pairs"), and fixed-size block
//     slack — a one-edge source still reserves a whole block, which
//     multiplies the footprint on power-law graphs.
//   - Update time: appending a new neighbor is O(1), but an in-place weight
//     change or a deletion rewrites the CSTable suffix — O(degree) — so
//     updates to hot (high-degree) sources are expensive, versus the
//     samtree's O(log n) (Table II).
package platogl

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"platod2gl/internal/cstable"
	"platod2gl/internal/graph"
	"platod2gl/internal/palm"
	"platod2gl/internal/storage"
)

// DefaultBlockCap is the block capacity (edges per block); it mirrors the
// samtree default node size so per-structure comparisons are like-for-like.
const DefaultBlockCap = 256

// blockKey is the composite key-value store key for one block. The extra
// fields beyond the source ID model the metadata PlatoGL bakes into its
// keys.
type blockKey struct {
	src   graph.VertexID
	seq   uint32
	shard uint16
	flags uint16
}

// block is one fixed-capacity chunk of a source's neighbor sequence.
type block struct {
	ids []graph.VertexID
}

// srcMeta is the per-source index: the block count, the global CSTable over
// the whole neighbor sequence (insertion order), and the per-destination
// position index.
type srcMeta struct {
	nblocks uint32
	cs      *cstable.CSTable
	where   map[graph.VertexID]int32 // dst -> global position
}

func (m *srcMeta) degree() int { return m.cs.Len() }

const shardCount = 64

type shard struct {
	mu     sync.RWMutex
	blocks map[blockKey]*block
	meta   map[graph.VertexID]*srcMeta
}

// Store is the PlatoGL block-based key-value topology store, one logical
// store per edge type, sharded by source for concurrency.
type Store struct {
	blockCap int
	relsMu   sync.RWMutex
	rels     map[graph.EdgeType]*[shardCount]shard
	numEdges atomic.Int64
	workers  int
}

var _ storage.TopologyStore = (*Store)(nil)

// Options configure the PlatoGL baseline.
type Options struct {
	// BlockCap is the fixed block capacity; defaults to DefaultBlockCap.
	BlockCap int
	// Workers bounds batch parallelism; 0 means auto.
	Workers int
}

// New returns an empty PlatoGL store.
func New(opt Options) *Store {
	if opt.BlockCap <= 0 {
		opt.BlockCap = DefaultBlockCap
	}
	return &Store{
		blockCap: opt.BlockCap,
		rels:     make(map[graph.EdgeType]*[shardCount]shard),
		workers:  opt.Workers,
	}
}

// Name implements storage.TopologyStore.
func (s *Store) Name() string { return "PlatoGL" }

func (s *Store) rel(et graph.EdgeType, create bool) *[shardCount]shard {
	s.relsMu.RLock()
	r := s.rels[et]
	s.relsMu.RUnlock()
	if r != nil || !create {
		return r
	}
	s.relsMu.Lock()
	defer s.relsMu.Unlock()
	if r = s.rels[et]; r == nil {
		r = new([shardCount]shard)
		for i := range r {
			r[i].blocks = make(map[blockKey]*block)
			r[i].meta = make(map[graph.VertexID]*srcMeta)
		}
		s.rels[et] = r
	}
	return r
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func shardFor(r *[shardCount]shard, src graph.VertexID) *shard {
	return &r[mix(uint64(src))&(shardCount-1)]
}

func keyFor(src graph.VertexID, seq uint32) blockKey {
	return blockKey{
		src:   src,
		seq:   seq,
		shard: uint16(mix(uint64(src)) & (shardCount - 1)),
		flags: uint16(seq & 0x3),
	}
}

// idAt returns the neighbor at global position g of src's sequence.
func (s *Store) idAt(sh *shard, src graph.VertexID, g int) graph.VertexID {
	b := sh.blocks[keyFor(src, uint32(g/s.blockCap))]
	return b.ids[g%s.blockCap]
}

// setIDAt overwrites the neighbor at global position g.
func (s *Store) setIDAt(sh *shard, src graph.VertexID, g int, id graph.VertexID) {
	b := sh.blocks[keyFor(src, uint32(g/s.blockCap))]
	b.ids[g%s.blockCap] = id
}

// addLocked inserts or updates one edge; caller holds the shard lock.
// Reports whether the edge was new.
func (s *Store) addLocked(sh *shard, src, dst graph.VertexID, w float64) bool {
	m := sh.meta[src]
	if m == nil {
		m = &srcMeta{
			cs:    cstable.NewWithCapacity(4),
			where: make(map[graph.VertexID]int32),
		}
		sh.meta[src] = m
	}
	if g, ok := m.where[dst]; ok {
		// In-place update: rewrite the per-source CSTable suffix —
		// O(degree), the cost the PlatoD2GL paper charges PlatoGL with.
		m.cs.Update(int(g), w)
		return false
	}
	// New neighbor: append into the last block (open a fresh fixed-size
	// block when full) and append to the CSTable — O(1).
	g := m.degree()
	if g%s.blockCap == 0 {
		sh.blocks[keyFor(src, m.nblocks)] = &block{
			ids: make([]graph.VertexID, 0, s.blockCap),
		}
		m.nblocks++
	}
	b := sh.blocks[keyFor(src, uint32(g/s.blockCap))]
	b.ids = append(b.ids, dst)
	m.cs.Append(w)
	m.where[dst] = int32(g)
	return true
}

// deleteLocked removes one edge; caller holds the shard lock. The neighbor
// sequence keeps insertion order, so deletion shifts every later element
// (and its locator) left and rewrites the CSTable suffix — O(degree).
func (s *Store) deleteLocked(sh *shard, src, dst graph.VertexID) bool {
	m := sh.meta[src]
	if m == nil {
		return false
	}
	g, ok := m.where[dst]
	if !ok {
		return false
	}
	n := m.degree()
	m.cs.Delete(int(g))
	for k := int(g); k < n-1; k++ {
		next := s.idAt(sh, src, k+1)
		s.setIDAt(sh, src, k, next)
		m.where[next] = int32(k)
	}
	delete(m.where, dst)
	// Shrink the last block; drop it entirely when empty.
	lastSeq := uint32((n - 1) / s.blockCap)
	lb := sh.blocks[keyFor(src, lastSeq)]
	lb.ids = lb.ids[:len(lb.ids)-1]
	if len(lb.ids) == 0 && m.nblocks > 0 {
		delete(sh.blocks, keyFor(src, lastSeq))
		m.nblocks--
	}
	return true
}

// AddEdge implements storage.TopologyStore.
func (s *Store) AddEdge(e graph.Edge) bool {
	r := s.rel(e.Type, true)
	sh := shardFor(r, e.Src)
	sh.mu.Lock()
	isNew := s.addLocked(sh, e.Src, e.Dst, e.Weight)
	sh.mu.Unlock()
	if isNew {
		s.numEdges.Add(1)
	}
	return isNew
}

// DeleteEdge implements storage.TopologyStore.
func (s *Store) DeleteEdge(src, dst graph.VertexID, et graph.EdgeType) bool {
	r := s.rel(et, false)
	if r == nil {
		return false
	}
	sh := shardFor(r, src)
	sh.mu.Lock()
	ok := s.deleteLocked(sh, src, dst)
	sh.mu.Unlock()
	if ok {
		s.numEdges.Add(-1)
	}
	return ok
}

// UpdateWeight implements storage.TopologyStore.
func (s *Store) UpdateWeight(src, dst graph.VertexID, et graph.EdgeType, w float64) bool {
	r := s.rel(et, false)
	if r == nil {
		return false
	}
	sh := shardFor(r, src)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m := sh.meta[src]
	if m == nil {
		return false
	}
	g, ok := m.where[dst]
	if !ok {
		return false
	}
	m.cs.Update(int(g), w)
	return true
}

// EdgeWeight implements storage.TopologyStore.
func (s *Store) EdgeWeight(src, dst graph.VertexID, et graph.EdgeType) (float64, bool) {
	r := s.rel(et, false)
	if r == nil {
		return 0, false
	}
	sh := shardFor(r, src)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m := sh.meta[src]
	if m == nil {
		return 0, false
	}
	g, ok := m.where[dst]
	if !ok {
		return 0, false
	}
	return m.cs.Weight(int(g)), true
}

// Degree implements storage.TopologyStore.
func (s *Store) Degree(src graph.VertexID, et graph.EdgeType) int {
	r := s.rel(et, false)
	if r == nil {
		return 0
	}
	sh := shardFor(r, src)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if m := sh.meta[src]; m != nil {
		return m.degree()
	}
	return 0
}

// SampleNeighbors implements storage.TopologyStore: PlatoGL's block-based
// ITS — binary search in the per-source CSTable, then a block-key lookup to
// fetch the neighbor from its block.
func (s *Store) SampleNeighbors(src graph.VertexID, et graph.EdgeType, k int, rng *rand.Rand, dst []graph.VertexID) []graph.VertexID {
	r := s.rel(et, false)
	if r == nil {
		return dst
	}
	sh := shardFor(r, src)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m := sh.meta[src]
	if m == nil || m.degree() == 0 {
		return dst
	}
	total := m.cs.Total()
	for i := 0; i < k; i++ {
		g := m.cs.Sample(rng.Float64() * total)
		dst = append(dst, s.idAt(sh, src, g))
	}
	return dst
}

// SampleNeighborsUniform implements storage.TopologyStore: a uniform draw
// is a random global position followed by a block lookup.
func (s *Store) SampleNeighborsUniform(src graph.VertexID, et graph.EdgeType, k int, rng *rand.Rand, dst []graph.VertexID) []graph.VertexID {
	r := s.rel(et, false)
	if r == nil {
		return dst
	}
	sh := shardFor(r, src)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m := sh.meta[src]
	if m == nil || m.degree() == 0 {
		return dst
	}
	n := m.degree()
	for i := 0; i < k; i++ {
		dst = append(dst, s.idAt(sh, src, rng.Intn(n)))
	}
	return dst
}

// Neighbors implements storage.TopologyStore.
func (s *Store) Neighbors(src graph.VertexID, et graph.EdgeType) ([]graph.VertexID, []float64) {
	r := s.rel(et, false)
	if r == nil {
		return nil, nil
	}
	sh := shardFor(r, src)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m := sh.meta[src]
	if m == nil {
		return nil, nil
	}
	n := m.degree()
	ids := make([]graph.VertexID, 0, n)
	for seq := uint32(0); seq < m.nblocks; seq++ {
		ids = append(ids, sh.blocks[keyFor(src, seq)].ids...)
	}
	return ids, m.cs.Weights()
}

// ApplyBatch implements storage.TopologyStore with the same plan/partition
// harness as PlatoD2GL, so batch-time comparisons isolate the data
// structures.
func (s *Store) ApplyBatch(events []graph.Event) {
	workers := s.workers
	if workers <= 0 {
		workers = palm.DefaultWorkers(len(events))
	}
	var added, removed atomic.Int64
	palm.Run(events, workers, func(g palm.Group) {
		r := s.rel(g.Type, true)
		sh := shardFor(r, g.Src)
		sh.mu.Lock()
		for _, ev := range g.Events {
			switch ev.Kind {
			case graph.AddEdge:
				if s.addLocked(sh, ev.Edge.Src, ev.Edge.Dst, ev.Edge.Weight) {
					added.Add(1)
				}
			case graph.DeleteEdge:
				if s.deleteLocked(sh, ev.Edge.Src, ev.Edge.Dst) {
					removed.Add(1)
				}
			case graph.UpdateWeight:
				m := sh.meta[ev.Edge.Src]
				if m == nil {
					continue
				}
				if gidx, ok := m.where[ev.Edge.Dst]; ok {
					m.cs.Update(int(gidx), ev.Edge.Weight)
				}
			}
		}
		sh.mu.Unlock()
	})
	s.numEdges.Add(added.Load() - removed.Load())
}

// Sources implements storage.TopologyStore.
func (s *Store) Sources(et graph.EdgeType) []graph.VertexID {
	r := s.rel(et, false)
	if r == nil {
		return nil
	}
	var out []graph.VertexID
	for i := range r {
		sh := &r[i]
		sh.mu.RLock()
		for src, m := range sh.meta {
			if m.degree() > 0 {
				out = append(out, src)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// NumEdges implements storage.TopologyStore.
func (s *Store) NumEdges() int64 { return s.numEdges.Load() }

// mapEntryOverhead approximates Go map bucket cost per entry.
const mapEntryOverhead = 48

// MemoryBytes implements storage.TopologyStore. The accounting mirrors what
// the paper blames PlatoGL for: composite block keys plus hash-index entries
// per block, fixed-size block reservations (slack included), per-edge
// locator entries, and per-source metadata.
func (s *Store) MemoryBytes() int64 {
	var total int64
	s.relsMu.RLock()
	rels := make([]*[shardCount]shard, 0, len(s.rels))
	for _, r := range s.rels {
		rels = append(rels, r)
	}
	s.relsMu.RUnlock()
	for _, r := range rels {
		for i := range r {
			sh := &r[i]
			sh.mu.RLock()
			for _, b := range sh.blocks {
				total += mapEntryOverhead + 16 /* blockKey */ + 8 /* ptr */
				total += 24 + 8*int64(cap(b.ids))                 // fixed block reservation
			}
			for _, m := range sh.meta {
				total += mapEntryOverhead + 8 + 8 /* key + ptr */
				total += 32 /* srcMeta */ + m.cs.MemoryBytes()
				total += int64(len(m.where)) * (mapEntryOverhead + 12)
			}
			sh.mu.RUnlock()
		}
	}
	return total
}
