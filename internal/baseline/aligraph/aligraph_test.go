package aligraph

import (
	"testing"

	"platod2gl/internal/graph"
	"platod2gl/internal/storage"
	"platod2gl/internal/storetest"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, func() storage.TopologyStore { return New(Options{}) })
}

func TestAliasRebuildAfterUpdate(t *testing.T) {
	s := New(Options{})
	s.AddEdge(graph.Edge{Src: 1, Dst: 10, Weight: 1})
	s.AddEdge(graph.Edge{Src: 1, Dst: 20, Weight: 1})
	// Skew the weights heavily and verify sampling follows.
	s.UpdateWeight(1, 10, 0, 1000)
	s.UpdateWeight(1, 20, 0, 1)
	rng := newRng()
	counts := map[graph.VertexID]int{}
	for _, id := range s.SampleNeighbors(1, 0, 10000, rng, nil) {
		counts[id]++
	}
	if counts[10] < 9500 {
		t.Fatalf("sampling ignores updated weights: %v", counts)
	}
}

func TestDuplicatedTopologyCostsMemory(t *testing.T) {
	// AliGraph keeps adjacency + index + alias: must cost more per edge
	// than raw id+weight storage.
	s := New(Options{})
	const n = 10000
	for i := uint64(0); i < n; i++ {
		s.AddEdge(graph.Edge{Src: graph.VertexID(i % 20), Dst: graph.VertexID(i), Weight: 1})
	}
	raw := int64(n * 16) // id + weight
	if s.MemoryBytes() < 2*raw {
		t.Fatalf("MemoryBytes = %d, expected > 2x raw %d (duplicated topology)", s.MemoryBytes(), raw)
	}
}

func TestZeroWeightSourceSamplesNothing(t *testing.T) {
	s := New(Options{})
	s.AddEdge(graph.Edge{Src: 1, Dst: 2, Weight: 0})
	rng := newRng()
	if out := s.SampleNeighbors(1, 0, 5, rng, nil); len(out) != 0 {
		t.Fatalf("sampled from all-zero-weight source: %v", out)
	}
}

func BenchmarkAddEdgeWithRebuild(b *testing.B) {
	s := New(Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddEdge(graph.Edge{Src: graph.VertexID(i % 100), Dst: graph.VertexID(i), Weight: 1})
	}
}
