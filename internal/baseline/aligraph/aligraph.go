// Package aligraph reimplements the graph storage and sampling layer of
// AliGraph (VLDB'19, ref. [38]) as the PlatoD2GL paper characterizes it: a
// hash-by-source *static* store that duplicates topology into auxiliary
// sampling structures.
//
// Each source keeps a dense adjacency (IDs + weights), a per-destination
// index for lookups, and a Vose alias table for O(1) weighted draws. The
// alias table encodes global normalization, so *any* weight change
// invalidates it: dynamic updates mark the source dirty, and the table is
// rebuilt from scratch — O(degree) — before the next sample (or at batch
// end). This is the "expensive memory cost since it has to duplicate the
// graph topology for supporting fast sampling" and the rebuild-on-update
// behavior of static stores (Sec. VIII).
package aligraph

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"platod2gl/internal/alias"
	"platod2gl/internal/graph"
	"platod2gl/internal/palm"
	"platod2gl/internal/storage"
)

// adjacency is one source's duplicated topology: raw edges, a lookup index,
// and the alias sampling table.
type adjacency struct {
	ids     []graph.VertexID
	weights []float64
	index   map[graph.VertexID]int32
	table   *alias.Table // nil when dirty
}

func (a *adjacency) ensureTable() {
	if a.table == nil && len(a.weights) > 0 {
		t, err := alias.New(a.weights)
		if err != nil {
			return // all-zero weights: leave dirty, sampling returns nothing
		}
		a.table = t
	}
}

const shardCount = 64

type shard struct {
	mu  sync.RWMutex
	adj map[graph.VertexID]*adjacency
}

// Store is the AliGraph hash-by-source baseline.
type Store struct {
	relsMu   sync.RWMutex
	rels     map[graph.EdgeType]*[shardCount]shard
	numEdges atomic.Int64
	workers  int
}

var _ storage.TopologyStore = (*Store)(nil)

// Options configure the AliGraph baseline.
type Options struct {
	// Workers bounds batch parallelism; 0 means auto.
	Workers int
}

// New returns an empty AliGraph store.
func New(opt Options) *Store {
	return &Store{rels: make(map[graph.EdgeType]*[shardCount]shard), workers: opt.Workers}
}

// Name implements storage.TopologyStore.
func (s *Store) Name() string { return "AliGraph" }

func (s *Store) rel(et graph.EdgeType, create bool) *[shardCount]shard {
	s.relsMu.RLock()
	r := s.rels[et]
	s.relsMu.RUnlock()
	if r != nil || !create {
		return r
	}
	s.relsMu.Lock()
	defer s.relsMu.Unlock()
	if r = s.rels[et]; r == nil {
		r = new([shardCount]shard)
		for i := range r {
			r[i].adj = make(map[graph.VertexID]*adjacency)
		}
		s.rels[et] = r
	}
	return r
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func shardFor(r *[shardCount]shard, src graph.VertexID) *shard {
	return &r[mix(uint64(src))&(shardCount-1)]
}

// addLocked inserts/updates one edge and invalidates the alias table.
// rebuild controls whether the table is reconstructed immediately (single
// ops) or deferred (batch).
func (s *Store) addLocked(sh *shard, src, dst graph.VertexID, w float64, rebuild bool) bool {
	a := sh.adj[src]
	if a == nil {
		a = &adjacency{index: make(map[graph.VertexID]int32)}
		sh.adj[src] = a
	}
	isNew := true
	if i, ok := a.index[dst]; ok {
		a.weights[i] = w
		isNew = false
	} else {
		a.index[dst] = int32(len(a.ids))
		a.ids = append(a.ids, dst)
		a.weights = append(a.weights, w)
	}
	a.table = nil // static structure invalidated
	if rebuild {
		a.ensureTable()
	}
	return isNew
}

func (s *Store) deleteLocked(sh *shard, src, dst graph.VertexID, rebuild bool) bool {
	a := sh.adj[src]
	if a == nil {
		return false
	}
	i, ok := a.index[dst]
	if !ok {
		return false
	}
	last := int32(len(a.ids) - 1)
	if i != last {
		a.ids[i] = a.ids[last]
		a.weights[i] = a.weights[last]
		a.index[a.ids[i]] = i
	}
	a.ids = a.ids[:last]
	a.weights = a.weights[:last]
	delete(a.index, dst)
	a.table = nil
	if rebuild {
		a.ensureTable()
	}
	return true
}

// AddEdge implements storage.TopologyStore. The alias table is rebuilt
// immediately — the static store's per-update O(degree) penalty.
func (s *Store) AddEdge(e graph.Edge) bool {
	r := s.rel(e.Type, true)
	sh := shardFor(r, e.Src)
	sh.mu.Lock()
	isNew := s.addLocked(sh, e.Src, e.Dst, e.Weight, true)
	sh.mu.Unlock()
	if isNew {
		s.numEdges.Add(1)
	}
	return isNew
}

// DeleteEdge implements storage.TopologyStore.
func (s *Store) DeleteEdge(src, dst graph.VertexID, et graph.EdgeType) bool {
	r := s.rel(et, false)
	if r == nil {
		return false
	}
	sh := shardFor(r, src)
	sh.mu.Lock()
	ok := s.deleteLocked(sh, src, dst, true)
	sh.mu.Unlock()
	if ok {
		s.numEdges.Add(-1)
	}
	return ok
}

// UpdateWeight implements storage.TopologyStore.
func (s *Store) UpdateWeight(src, dst graph.VertexID, et graph.EdgeType, w float64) bool {
	r := s.rel(et, false)
	if r == nil {
		return false
	}
	sh := shardFor(r, src)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a := sh.adj[src]
	if a == nil {
		return false
	}
	i, ok := a.index[dst]
	if !ok {
		return false
	}
	a.weights[i] = w
	a.table = nil
	a.ensureTable()
	return true
}

// EdgeWeight implements storage.TopologyStore.
func (s *Store) EdgeWeight(src, dst graph.VertexID, et graph.EdgeType) (float64, bool) {
	r := s.rel(et, false)
	if r == nil {
		return 0, false
	}
	sh := shardFor(r, src)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	a := sh.adj[src]
	if a == nil {
		return 0, false
	}
	i, ok := a.index[dst]
	if !ok {
		return 0, false
	}
	return a.weights[i], true
}

// Degree implements storage.TopologyStore.
func (s *Store) Degree(src graph.VertexID, et graph.EdgeType) int {
	r := s.rel(et, false)
	if r == nil {
		return 0
	}
	sh := shardFor(r, src)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if a := sh.adj[src]; a != nil {
		return len(a.ids)
	}
	return 0
}

// SampleNeighbors implements storage.TopologyStore with O(1) alias draws,
// rebuilding the table first if a dynamic update invalidated it.
func (s *Store) SampleNeighbors(src graph.VertexID, et graph.EdgeType, k int, rng *rand.Rand, dst []graph.VertexID) []graph.VertexID {
	r := s.rel(et, false)
	if r == nil {
		return dst
	}
	sh := shardFor(r, src)
	sh.mu.Lock() // write lock: sampling may rebuild the alias table
	defer sh.mu.Unlock()
	a := sh.adj[src]
	if a == nil || len(a.ids) == 0 {
		return dst
	}
	a.ensureTable()
	if a.table == nil {
		return dst
	}
	// Sec. V ("Challenges"): existing systems "need to retrieve all the
	// neighbours of a source node ... into memory" before sampling. Model
	// the gather: materialize the neighbor list per request, then draw from
	// the alias table in O(1) each.
	retrieved := make([]graph.VertexID, len(a.ids))
	copy(retrieved, a.ids)
	for i := 0; i < k; i++ {
		dst = append(dst, retrieved[a.table.Sample(rng)])
	}
	return dst
}

// SampleNeighborsUniform implements storage.TopologyStore: uniform draws
// over the (retrieved) adjacency.
func (s *Store) SampleNeighborsUniform(src graph.VertexID, et graph.EdgeType, k int, rng *rand.Rand, dst []graph.VertexID) []graph.VertexID {
	r := s.rel(et, false)
	if r == nil {
		return dst
	}
	sh := shardFor(r, src)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	a := sh.adj[src]
	if a == nil || len(a.ids) == 0 {
		return dst
	}
	retrieved := make([]graph.VertexID, len(a.ids))
	copy(retrieved, a.ids)
	for i := 0; i < k; i++ {
		dst = append(dst, retrieved[rng.Intn(len(retrieved))])
	}
	return dst
}

// Neighbors implements storage.TopologyStore.
func (s *Store) Neighbors(src graph.VertexID, et graph.EdgeType) ([]graph.VertexID, []float64) {
	r := s.rel(et, false)
	if r == nil {
		return nil, nil
	}
	sh := shardFor(r, src)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	a := sh.adj[src]
	if a == nil {
		return nil, nil
	}
	ids := make([]graph.VertexID, len(a.ids))
	copy(ids, a.ids)
	weights := make([]float64, len(a.weights))
	copy(weights, a.weights)
	return ids, weights
}

// ApplyBatch implements storage.TopologyStore: edits are applied per source
// and every touched source's alias table is rebuilt from scratch once at
// group end — the hash-by-source rebuild the paper attributes to static
// stores under dynamic load.
func (s *Store) ApplyBatch(events []graph.Event) {
	workers := s.workers
	if workers <= 0 {
		workers = palm.DefaultWorkers(len(events))
	}
	var added, removed atomic.Int64
	palm.Run(events, workers, func(g palm.Group) {
		r := s.rel(g.Type, true)
		sh := shardFor(r, g.Src)
		sh.mu.Lock()
		for _, ev := range g.Events {
			switch ev.Kind {
			case graph.AddEdge:
				if s.addLocked(sh, ev.Edge.Src, ev.Edge.Dst, ev.Edge.Weight, false) {
					added.Add(1)
				}
			case graph.DeleteEdge:
				if s.deleteLocked(sh, ev.Edge.Src, ev.Edge.Dst, false) {
					removed.Add(1)
				}
			case graph.UpdateWeight:
				if a := sh.adj[ev.Edge.Src]; a != nil {
					if i, ok := a.index[ev.Edge.Dst]; ok {
						a.weights[i] = ev.Edge.Weight
						a.table = nil
					}
				}
			}
		}
		// Rebuild the static sampling structure for this source.
		if a := sh.adj[g.Src]; a != nil {
			a.ensureTable()
		}
		sh.mu.Unlock()
	})
	s.numEdges.Add(added.Load() - removed.Load())
}

// Sources implements storage.TopologyStore.
func (s *Store) Sources(et graph.EdgeType) []graph.VertexID {
	r := s.rel(et, false)
	if r == nil {
		return nil
	}
	var out []graph.VertexID
	for i := range r {
		sh := &r[i]
		sh.mu.RLock()
		for src, a := range sh.adj {
			if len(a.ids) > 0 {
				out = append(out, src)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// NumEdges implements storage.TopologyStore.
func (s *Store) NumEdges() int64 { return s.numEdges.Load() }

const mapEntryOverhead = 48

// MemoryBytes implements storage.TopologyStore: adjacency arrays plus the
// duplicated structures (per-edge index entries and alias tables).
func (s *Store) MemoryBytes() int64 {
	var total int64
	s.relsMu.RLock()
	rels := make([]*[shardCount]shard, 0, len(s.rels))
	for _, r := range s.rels {
		rels = append(rels, r)
	}
	s.relsMu.RUnlock()
	for _, r := range rels {
		for i := range r {
			sh := &r[i]
			sh.mu.RLock()
			for _, a := range sh.adj {
				total += mapEntryOverhead + 16 // source entry
				total += 24 + 8*int64(cap(a.ids))
				total += 24 + 8*int64(cap(a.weights))
				total += int64(len(a.index)) * (mapEntryOverhead + 12)
				if a.table != nil {
					total += a.table.MemoryBytes()
				}
			}
			sh.mu.RUnlock()
		}
	}
	return total
}
