package aligraph

import "math/rand"

func newRng() *rand.Rand { return rand.New(rand.NewSource(7)) }
