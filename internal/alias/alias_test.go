package alias

import (
	"math/rand"
	"testing"
)

func TestErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("expected error on empty weights")
	}
	if _, err := New([]float64{0, 0}); err == nil {
		t.Fatal("expected error on all-zero weights")
	}
	if _, err := New([]float64{1, -1}); err == nil {
		t.Fatal("expected error on negative weight")
	}
}

func TestSingleElement(t *testing.T) {
	tab, err := New([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if got := tab.Sample(rng); got != 0 {
			t.Fatalf("Sample = %d, want 0", got)
		}
	}
}

func TestDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 10, 0.5}
	tab, err := New(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	const trials = 300000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[tab.Sample(rng)]++
	}
	chi2 := 0.0
	for i, w := range weights {
		expected := float64(trials) * w / tab.Total()
		d := float64(counts[i]) - expected
		chi2 += d * d / expected
	}
	// 5 dof, p=0.001 critical value 20.52.
	if chi2 > 20.52 {
		t.Fatalf("chi-square = %v, counts=%v", chi2, counts)
	}
}

func TestZeroWeightNeverSampled(t *testing.T) {
	tab, err := New([]float64{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		got := tab.Sample(rng)
		if got != 1 && got != 3 {
			t.Fatalf("sampled zero-weight index %d", got)
		}
	}
}

func TestUniformWeights(t *testing.T) {
	n := 64
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 2.0
	}
	tab, err := New(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, n)
	const trials = 128000
	for i := 0; i < trials; i++ {
		counts[tab.Sample(rng)]++
	}
	expected := float64(trials) / float64(n)
	for i, c := range counts {
		if float64(c) < expected*0.8 || float64(c) > expected*1.2 {
			t.Fatalf("index %d count %d deviates >20%% from %v", i, c, expected)
		}
	}
}

func BenchmarkSample(b *testing.B) {
	const n = 1 << 12
	weights := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range weights {
		weights[i] = rng.Float64()
	}
	tab, err := New(weights)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Sample(rng)
	}
}

func BenchmarkBuild(b *testing.B) {
	const n = 1 << 12
	weights := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range weights {
		weights[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(weights); err != nil {
			b.Fatal(err)
		}
	}
}
