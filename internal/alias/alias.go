// Package alias implements Vose's alias method for weighted sampling in O(1)
// per draw after O(n) construction.
//
// The paper (Sec. V, "Challenges") notes that most existing deep graph
// learning systems — AliGraph among them — adopt the memory-expensive Alias
// method, which materializes an extra sampling table (a probability and an
// alias index per element, 2n words on top of the weights). Because the
// table encodes global normalization, any weight change forces a full O(n)
// rebuild, which is why alias tables are confined to static stores. We use
// this package inside the AliGraph baseline (internal/baseline/aligraph).
package alias

import (
	"fmt"
	"math/rand"
)

// Table is an immutable alias sampling table. Build once, sample forever.
type Table struct {
	prob  []float64 // probability of keeping column i
	alias []int32   // fallback column
	total float64
}

// New constructs an alias table from the weights using Vose's algorithm.
// All weights must be non-negative and at least one must be positive.
func New(weights []float64) (*Table, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("alias: empty weight list")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("alias: negative weight %v at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("alias: all weights are zero")
	}
	t := &Table{
		prob:  make([]float64, n),
		alias: make([]int32, n),
		total: total,
	}
	// Scale weights so the average column holds probability 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[l] = scaled[l]
		t.alias[l] = g
		scaled[g] = (scaled[g] + scaled[l]) - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, g := range large {
		t.prob[g] = 1
		t.alias[g] = g
	}
	for _, l := range small { // numerical residue
		t.prob[l] = 1
		t.alias[l] = l
	}
	return t, nil
}

// Len returns the number of elements in the table.
func (t *Table) Len() int { return len(t.prob) }

// Total returns the sum of the weights the table was built from.
func (t *Table) Total() float64 { return t.total }

// Sample draws an index with probability proportional to its weight, in O(1).
func (t *Table) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(t.prob))
	if rng.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// MemoryBytes returns the structural footprint: the two auxiliary arrays the
// paper calls out as the Alias method's extra memory cost.
func (t *Table) MemoryBytes() int64 {
	return int64(2*24 + 8*cap(t.prob) + 4*cap(t.alias))
}
