// Package fenwick implements the FSTable (Fenwick-tree Sum Table) and the
// FTS (Fenwick Tree-based Sampling) method of the PlatoD2GL paper (Sec. V).
//
// An FSTable over a weight array A of n elements is an array F of n elements
// where, per Eq. (4) of the paper,
//
//	F[i] = sum_{j=g(i)+1}^{i} A[j],  g(i) = i - LSB(i+1),
//
// and LSB(x) is the value of the lowest set bit of x. This is a 0-indexed
// binary indexed tree. Unlike the CSTable used by PlatoGL (strict prefix
// sums, O(n) per update), the FSTable supports in-place weight updates,
// append-style insertion and swap-deletion in O(log n) each (Table II of the
// paper), while weighted sampling stays O(log n).
//
// Raw weights are not stored: a single element can be read back in O(log n)
// (Weight) and the whole array reconstructed in O(n) total (Weights), so the
// structure costs exactly one float64 per neighbor, like a plain weight list.
package fenwick

import "fmt"

// FSTable is a Fenwick-tree sum table over a sequence of non-negative edge
// weights. The zero value is an empty table ready to use.
//
// FSTable is not safe for concurrent mutation; the samtree layer serializes
// writers per tree (see internal/palm).
type FSTable struct {
	f []float64
}

// lsb returns the value of the lowest set bit of x (x > 0).
func lsb(x int) int { return x & (-x) }

// New builds an FSTable from raw weights in O(n) time.
func New(weights []float64) *FSTable {
	t := &FSTable{f: make([]float64, 0, len(weights))}
	for _, w := range weights {
		t.Append(w)
	}
	return t
}

// NewWithCapacity returns an empty FSTable whose backing array can hold c
// elements without reallocation.
func NewWithCapacity(c int) *FSTable {
	return &FSTable{f: make([]float64, 0, c)}
}

// Len returns the number of weights in the table.
func (t *FSTable) Len() int { return len(t.f) }

// Total returns the sum of all weights (procedure getAllSum of Algorithm 5):
// it walks the Fenwick roots in O(log n).
func (t *FSTable) Total() float64 {
	s := 0.0
	for i := len(t.f); i > 0; i -= lsb(i) {
		s += t.f[i-1]
	}
	return s
}

// Prefix returns the sum of weights with indices in [0, i]. It panics if i is
// out of range. Runs in O(log n).
func (t *FSTable) Prefix(i int) float64 {
	if i < 0 || i >= len(t.f) {
		panic(fmt.Sprintf("fenwick: Prefix index %d out of range [0,%d)", i, len(t.f)))
	}
	s := 0.0
	for j := i + 1; j > 0; j -= lsb(j) {
		s += t.f[j-1]
	}
	return s
}

// Weight returns the raw weight at index i in O(log n). It exploits that
// F[i] covers the range [g(i)+1, i]: subtracting the Fenwick entries covering
// [g(i)+1, i-1] leaves exactly A[i].
func (t *FSTable) Weight(i int) float64 {
	if i < 0 || i >= len(t.f) {
		panic(fmt.Sprintf("fenwick: Weight index %d out of range [0,%d)", i, len(t.f)))
	}
	v := t.f[i]
	bottom := i - lsb(i+1) // g(i)
	for j := i - 1; j != bottom; j -= lsb(j + 1) {
		v -= t.f[j]
	}
	return v
}

// Add adds delta to the weight at index i, updating all covering Fenwick
// entries (Algorithm 3 of the paper). Runs in O(log n).
func (t *FSTable) Add(i int, delta float64) {
	if i < 0 || i >= len(t.f) {
		panic(fmt.Sprintf("fenwick: Add index %d out of range [0,%d)", i, len(t.f)))
	}
	for ; i < len(t.f); i += lsb(i + 1) {
		t.f[i] += delta
	}
}

// Update sets the weight at index i to w (the paper's "in-place update").
// Runs in O(log n).
func (t *FSTable) Update(i int, w float64) {
	t.Add(i, w-t.Weight(i))
}

// Append inserts a new weight at the end of the table (Algorithm 4 of the
// paper). The new Fenwick entry is the weight plus the entries of its
// Fenwick children, all of which already exist. Runs in O(log n).
func (t *FSTable) Append(w float64) {
	n := len(t.f)
	s := w
	// The children of 1-indexed position n+1 are (n+1)-2^k for 2^k < LSB(n+1).
	for step := 1; step < lsb(n+1); step <<= 1 {
		s += t.f[n-step]
	}
	t.f = append(t.f, s)
}

// Delete removes the weight at index i using the paper's swap-delete: the
// last element's weight overwrites position i (updating its Fenwick parents),
// then the last Fenwick entry is dropped — no entry with a smaller index
// covers position n-1, so truncation is exact. Runs in O(log n).
// The caller must apply the same swap to any parallel ID list.
func (t *FSTable) Delete(i int) {
	n := len(t.f)
	if i < 0 || i >= n {
		panic(fmt.Sprintf("fenwick: Delete index %d out of range [0,%d)", i, n))
	}
	if i != n-1 {
		t.Update(i, t.Weight(n-1))
	}
	t.f = t.f[:n-1]
}

// Sample performs the FTS range-narrow search (Algorithm 5): it returns the
// smallest index p such that the strict prefix sum through p exceeds r.
// r must lie in [0, Total()); values at or beyond Total() clamp to the last
// index. Sampling with r drawn uniformly from [0, Total()) selects index i
// with probability weight(i)/Total(). Returns -1 on an empty table.
//
// The search walks a virtual complete binary tree of size 2^m >= n: by the
// sub-tree-sum property (Theorem 4), the midpoint entry of any power-of-two
// aligned range holds exactly the total weight of the range's left half, so
// each comparison either descends left or subtracts F[mid] and descends
// right. O(log n).
func (t *FSTable) Sample(r float64) int {
	n := len(t.f)
	if n == 0 {
		return -1
	}
	m := 1
	for m < n {
		m <<= 1
	}
	left, right := 0, m-1
	for left < right {
		mid := (left + right) / 2
		if mid >= n {
			right = mid
			continue
		}
		if t.f[mid] > r {
			right = mid
		} else {
			r -= t.f[mid]
			left = mid + 1
		}
	}
	if left >= n {
		left = n - 1
	}
	return left
}

// Weights reconstructs the raw weight array in O(n) total: every index is
// the Fenwick child of exactly one covering entry, so subtracting each
// entry's children costs amortized O(1) per element.
func (t *FSTable) Weights() []float64 {
	out := make([]float64, len(t.f))
	for i := range t.f {
		v := t.f[i]
		for step := 1; step < lsb(i+1); step <<= 1 {
			v -= t.f[i-step]
		}
		out[i] = v
	}
	return out
}

// Reset empties the table, retaining the backing array.
func (t *FSTable) Reset() { t.f = t.f[:0] }

// Clone returns a deep copy of the table.
func (t *FSTable) Clone() *FSTable {
	f := make([]float64, len(t.f))
	copy(f, t.f)
	return &FSTable{f: f}
}

// MemoryBytes returns the structural memory footprint of the table: the
// slice header plus the backing array.
func (t *FSTable) MemoryBytes() int64 {
	return int64(24 + 8*cap(t.f))
}
