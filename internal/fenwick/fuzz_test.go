package fenwick

import (
	"math"
	"testing"
)

// FuzzOps drives a random operation tape against the naive reference; the
// fuzzer explores operation interleavings beyond the seeded random tests.
func FuzzOps(f *testing.F) {
	f.Add([]byte{0, 10, 1, 5, 2, 0, 3, 1})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 2, 1, 2, 0})
	f.Fuzz(func(t *testing.T, tape []byte) {
		fs := NewWithCapacity(0)
		var ref []float64
		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i]%4, int(tape[i+1])
			switch {
			case op == 0 || len(ref) == 0:
				w := float64(arg%31) + 0.5
				fs.Append(w)
				ref = append(ref, w)
			case op == 1:
				idx := arg % len(ref)
				w := float64(arg%17) + 0.25
				fs.Update(idx, w)
				ref[idx] = w
			case op == 2:
				idx := arg % len(ref)
				last := len(ref) - 1
				ref[idx] = ref[last]
				ref = ref[:last]
				fs.Delete(idx)
			case op == 3:
				idx := arg % len(ref)
				fs.Add(idx, 0.5)
				ref[idx] += 0.5
			}
		}
		if fs.Len() != len(ref) {
			t.Fatalf("len %d vs %d", fs.Len(), len(ref))
		}
		got := fs.Weights()
		for i, w := range ref {
			if math.Abs(got[i]-w) > 1e-6 {
				t.Fatalf("weight[%d] = %v, want %v", i, got[i], w)
			}
		}
		// Prefix sums must be non-decreasing (weights are positive).
		prev := -1.0
		for i := 0; i < fs.Len(); i++ {
			p := fs.Prefix(i)
			if p < prev-1e-6 {
				t.Fatalf("prefix not monotone at %d", i)
			}
			prev = p
		}
	})
}
