package fenwick

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

// naive is a reference implementation holding raw weights.
type naive struct{ w []float64 }

func (n *naive) total() float64 {
	s := 0.0
	for _, w := range n.w {
		s += w
	}
	return s
}

func (n *naive) prefix(i int) float64 {
	s := 0.0
	for j := 0; j <= i; j++ {
		s += n.w[j]
	}
	return s
}

func (n *naive) sample(r float64) int {
	s := 0.0
	for i, w := range n.w {
		s += w
		if s > r {
			return i
		}
	}
	return len(n.w) - 1
}

func (n *naive) delete(i int) {
	last := len(n.w) - 1
	n.w[i] = n.w[last]
	n.w = n.w[:last]
}

func TestEmptyTable(t *testing.T) {
	var f FSTable
	if f.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", f.Len())
	}
	if f.Total() != 0 {
		t.Fatalf("Total() = %v, want 0", f.Total())
	}
	if got := f.Sample(0.5); got != -1 {
		t.Fatalf("Sample on empty = %d, want -1", got)
	}
	if w := f.Weights(); len(w) != 0 {
		t.Fatalf("Weights() = %v, want empty", w)
	}
}

func TestPaperExample3(t *testing.T) {
	// Example 3 of the paper: A = {0.3, 0.4, 0.1}.
	f := New([]float64{0.3, 0.4, 0.1})
	// F[0] = 0.3, F[1] = 0.7, F[2] = 0.1 per Eq. (4).
	wantF := []float64{0.3, 0.7, 0.1}
	for i, want := range wantF {
		if got := f.f[i]; !almostEqual(got, want) {
			t.Errorf("F[%d] = %v, want %v", i, got, want)
		}
	}
	if got := f.Total(); !almostEqual(got, 0.8) {
		t.Errorf("Total() = %v, want 0.8", got)
	}
}

func TestTheorem4SubtreeSum(t *testing.T) {
	// F[2^k - 1] must equal the strict prefix sum of the first 2^k weights.
	rng := rand.New(rand.NewSource(42))
	weights := make([]float64, 300)
	for i := range weights {
		weights[i] = rng.Float64() * 10
	}
	f := New(weights)
	for k := 0; (1 << k) <= len(weights); k++ {
		idx := (1 << k) - 1
		want := 0.0
		for j := 0; j <= idx; j++ {
			want += weights[j]
		}
		if got := f.f[idx]; !almostEqual(got, want) {
			t.Errorf("F[2^%d-1] = %v, want prefix %v", k, got, want)
		}
	}
}

func TestWeightRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 7, 8, 9, 64, 100, 257} {
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64() * 5
		}
		f := New(weights)
		for i, want := range weights {
			if got := f.Weight(i); !almostEqual(got, want) {
				t.Fatalf("n=%d Weight(%d) = %v, want %v", n, i, got, want)
			}
		}
		got := f.Weights()
		for i, want := range weights {
			if !almostEqual(got[i], want) {
				t.Fatalf("n=%d Weights()[%d] = %v, want %v", n, i, got[i], want)
			}
		}
	}
}

func TestPrefixMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	weights := make([]float64, 123)
	for i := range weights {
		weights[i] = rng.Float64()
	}
	f := New(weights)
	ref := &naive{w: weights}
	for i := range weights {
		if got, want := f.Prefix(i), ref.prefix(i); !almostEqual(got, want) {
			t.Fatalf("Prefix(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestUpdate(t *testing.T) {
	f := New([]float64{1, 2, 3, 4, 5})
	f.Update(2, 10)
	if got := f.Weight(2); !almostEqual(got, 10) {
		t.Fatalf("Weight(2) = %v after Update, want 10", got)
	}
	if got := f.Total(); !almostEqual(got, 22) {
		t.Fatalf("Total() = %v after Update, want 22", got)
	}
	// Prefix sums must reflect the change everywhere.
	wantPrefix := []float64{1, 3, 13, 17, 22}
	for i, want := range wantPrefix {
		if got := f.Prefix(i); !almostEqual(got, want) {
			t.Fatalf("Prefix(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestDeleteSwapSemantics(t *testing.T) {
	f := New([]float64{1, 2, 3, 4, 5})
	f.Delete(1) // weight 2 replaced by last weight 5
	if f.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", f.Len())
	}
	want := []float64{1, 5, 3, 4}
	got := f.Weights()
	for i := range want {
		if !almostEqual(got[i], want[i]) {
			t.Fatalf("Weights() = %v, want %v", got, want)
		}
	}
	// Deleting the final element needs no swap.
	f.Delete(3)
	want = []float64{1, 5, 3}
	got = f.Weights()
	for i := range want {
		if !almostEqual(got[i], want[i]) {
			t.Fatalf("after tail delete Weights() = %v, want %v", got, want)
		}
	}
}

func TestDeleteToEmpty(t *testing.T) {
	f := New([]float64{3})
	f.Delete(0)
	if f.Len() != 0 || f.Total() != 0 {
		t.Fatalf("table not empty after deleting only element: len=%d total=%v", f.Len(), f.Total())
	}
	f.Append(7)
	if got := f.Weight(0); !almostEqual(got, 7) {
		t.Fatalf("Weight(0) = %v after re-append, want 7", got)
	}
}

func TestSampleBoundaries(t *testing.T) {
	f := New([]float64{1, 2, 3})
	cases := []struct {
		r    float64
		want int
	}{
		{0, 0},
		{0.999, 0},
		{1.0, 1},
		{2.999, 1},
		{3.0, 2},
		{5.999, 2},
		{6.0, 2},   // clamped
		{100.0, 2}, // clamped
	}
	for _, c := range cases {
		if got := f.Sample(c.r); got != c.want {
			t.Errorf("Sample(%v) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestSampleMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 5, 16, 17, 100, 255, 256, 257} {
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64() * 3
		}
		f := New(weights)
		ref := &naive{w: weights}
		total := f.Total()
		for trial := 0; trial < 200; trial++ {
			r := rng.Float64() * total
			if got, want := f.Sample(r), ref.sample(r); got != want {
				t.Fatalf("n=%d Sample(%v) = %d, want %d (weights=%v)", n, r, got, want, weights)
			}
		}
	}
}

func TestSampleDistribution(t *testing.T) {
	// Chi-square goodness of fit: sampled frequencies should follow the
	// weight distribution.
	weights := []float64{1, 2, 3, 4, 10, 0.5, 0.5, 4}
	f := New(weights)
	rng := rand.New(rand.NewSource(1234))
	const trials = 200000
	counts := make([]int, len(weights))
	total := f.Total()
	for i := 0; i < trials; i++ {
		counts[f.Sample(rng.Float64()*total)]++
	}
	chi2 := 0.0
	for i, w := range weights {
		expected := float64(trials) * w / total
		d := float64(counts[i]) - expected
		chi2 += d * d / expected
	}
	// 7 degrees of freedom; p=0.001 critical value is 24.32.
	if chi2 > 24.32 {
		t.Fatalf("chi-square = %v exceeds 24.32; counts=%v", chi2, counts)
	}
}

func TestZeroWeightNeverSampled(t *testing.T) {
	weights := []float64{0, 5, 0, 5, 0}
	f := New(weights)
	rng := rand.New(rand.NewSource(5))
	total := f.Total()
	for i := 0; i < 5000; i++ {
		got := f.Sample(rng.Float64() * total)
		if got != 1 && got != 3 {
			t.Fatalf("sampled zero-weight index %d", got)
		}
	}
}

func TestRandomOpSequenceAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := NewWithCapacity(0)
	ref := &naive{}
	for step := 0; step < 20000; step++ {
		op := rng.Intn(4)
		switch {
		case op == 0 || ref.w == nil || len(ref.w) == 0:
			w := rng.Float64() * 4
			f.Append(w)
			ref.w = append(ref.w, w)
		case op == 1:
			i := rng.Intn(len(ref.w))
			w := rng.Float64() * 4
			f.Update(i, w)
			ref.w[i] = w
		case op == 2:
			i := rng.Intn(len(ref.w))
			f.Delete(i)
			ref.delete(i)
		case op == 3:
			i := rng.Intn(len(ref.w))
			d := rng.Float64() - 0.3
			if ref.w[i]+d < 0 {
				d = -ref.w[i]
			}
			f.Add(i, d)
			ref.w[i] += d
		}
		if f.Len() != len(ref.w) {
			t.Fatalf("step %d: Len mismatch %d vs %d", step, f.Len(), len(ref.w))
		}
		if step%997 == 0 {
			if !almostEqual(f.Total(), ref.total()) {
				t.Fatalf("step %d: Total %v vs %v", step, f.Total(), ref.total())
			}
			got := f.Weights()
			for i := range ref.w {
				if !almostEqual(got[i], ref.w[i]) {
					t.Fatalf("step %d: weight[%d] %v vs %v", step, i, got[i], ref.w[i])
				}
			}
			if len(ref.w) > 0 {
				r := rng.Float64() * ref.total()
				if g, w := f.Sample(r), ref.sample(r); g != w {
					t.Fatalf("step %d: Sample(%v) %d vs %d", step, r, g, w)
				}
			}
		}
	}
}

func TestQuickPropertyTotalEqualsPrefixOfLast(t *testing.T) {
	prop := func(raw []float64) bool {
		weights := make([]float64, 0, len(raw))
		for _, v := range raw {
			weights = append(weights, math.Abs(math.Mod(v, 100)))
		}
		if len(weights) == 0 {
			return true
		}
		f := New(weights)
		return almostEqual(f.Total(), f.Prefix(f.Len()-1))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPropertyAppendThenWeight(t *testing.T) {
	prop := func(raw []float64) bool {
		f := NewWithCapacity(len(raw))
		weights := make([]float64, 0, len(raw))
		for _, v := range raw {
			w := math.Abs(math.Mod(v, 50))
			weights = append(weights, w)
			f.Append(w)
		}
		for i, w := range weights {
			if !almostEqual(f.Weight(i), w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPropertySampleInRange(t *testing.T) {
	prop := func(raw []float64, rs []float64) bool {
		weights := make([]float64, 0, len(raw))
		for _, v := range raw {
			weights = append(weights, math.Abs(math.Mod(v, 50))+0.001)
		}
		if len(weights) == 0 {
			return true
		}
		f := New(weights)
		total := f.Total()
		for _, rv := range rs {
			r := math.Abs(math.Mod(rv, 1)) * total * 0.999999
			got := f.Sample(r)
			if got < 0 || got >= f.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	f := New([]float64{1, 2, 3})
	g := f.Clone()
	g.Update(0, 100)
	if got := f.Weight(0); !almostEqual(got, 1) {
		t.Fatalf("clone mutation leaked into original: Weight(0) = %v", got)
	}
}

func TestPanicsOnOutOfRange(t *testing.T) {
	f := New([]float64{1})
	for name, fn := range map[string]func(){
		"Prefix":      func() { f.Prefix(1) },
		"Weight":      func() { f.Weight(-1) },
		"Add":         func() { f.Add(5, 1) },
		"Delete":      func() { f.Delete(2) },
		"PrefixEmpty": func() { New(nil).Prefix(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkAppend(b *testing.B) {
	f := NewWithCapacity(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Append(1.5)
	}
}

func BenchmarkUpdate(b *testing.B) {
	const n = 1 << 12
	f := NewWithCapacity(n)
	for i := 0; i < n; i++ {
		f.Append(1)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Update(rng.Intn(n), 2)
	}
}

func BenchmarkSample(b *testing.B) {
	const n = 1 << 12
	f := NewWithCapacity(n)
	for i := 0; i < n; i++ {
		f.Append(1)
	}
	rng := rand.New(rand.NewSource(1))
	total := f.Total()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Sample(rng.Float64() * total)
	}
}
