// Package wire implements PlatoD2GL's binary RPC framing: the replacement
// for net/rpc + gob on every cluster hot path (remote sampling, feature
// pulls, batch ingest, replication, migration, anti-entropy).
//
// Motivation (ROADMAP item 4, and the DistDGL/AliGraph observation that
// serialization dominates remote GNN sampling): gob re-encodes type
// metadata per stream, reflects over every struct, and boxes every slice
// element. The payloads here are flat numeric records — vertex ids, float32
// feature rows, event tuples — so a hand-rolled little-endian layout with
// varint counts and bulk slice copies is both far smaller and far cheaper
// to encode.
//
// # Stream layout
//
// A wire connection starts with an 8-byte client hello and an 8-byte server
// acceptance (see Hello/Ack), negotiating a protocol version. The first
// hello byte is 0x00, which can never begin a net/rpc gob stream (gob
// messages are length-prefixed and never empty), so a server can sniff the
// first bytes of any accepted connection and fall back to serving legacy
// gob clients — the rolling-upgrade path.
//
// After the handshake, each direction carries length-prefixed frames:
//
//	uint32 LE  payload length (≤ MaxFrame)
//	byte       frame kind (KindRequest / KindResponse / KindError)
//	...        kind-specific payload
//
// A request payload is `uvarint method-id` followed by the method's encoded
// args; a response is the encoded reply; an error is a uvarint-length
// string. One request is outstanding per connection at a time (the client
// pools connections instead of multiplexing), so frames need no sequence
// numbers.
//
// Encoding primitives are append-style (no intermediate allocations) and
// decoding is bounds-checked against the frame: a truncated, corrupt, or
// oversized frame yields an error, never a panic and never an attacker-
// sized allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Version is the newest protocol version this build speaks. Version 1 is
// the initial binary framing; version 2 adds the request envelope
// (KindRequestEnv) carrying the caller's remaining deadline budget and
// priority class for server-side admission control. The handshake lets old
// and new builds agree on the highest version both sides support, so a v2
// client on a v1-negotiated connection simply keeps sending bare
// KindRequest frames.
const Version = 2

// Magic is the first hello byte sequence. The leading 0x00 is deliberate:
// a gob message starts with its uvarint byte length, which is never zero,
// so sniffing these four bytes cleanly separates wire clients from legacy
// net/rpc gob clients on the same listener.
var Magic = [4]byte{0x00, 'D', '2', 'G'}

// Frame kinds.
const (
	KindRequest  = 0x01
	KindResponse = 0x02 // successful reply payload
	KindError    = 0x03 // application error string
	// KindRequestEnv (protocol >= 2) is a request with an admission
	// envelope: `byte priority | uvarint budget-millis | uvarint method-id |
	// args`. priority 0 means "use the method's default class"; budget 0
	// means "no deadline propagated". Only valid on connections that
	// negotiated version >= 2.
	KindRequestEnv = 0x04
)

// MaxFrame caps a single frame's payload. Snapshots of large shards are the
// biggest legitimate payloads; anything beyond this is a corrupt length
// prefix and the connection is dropped rather than allocated for.
const MaxFrame = 1 << 30

// helloSize is the fixed size of both handshake messages.
const helloSize = 8

// ErrFrameTooLarge rejects a frame whose length prefix exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrTruncated reports a decode that ran past the end of the frame.
var ErrTruncated = errors.New("wire: truncated frame")

// ErrBadHandshake reports a malformed or version-incompatible handshake.
var ErrBadHandshake = errors.New("wire: bad handshake")

// Hello renders the client's 8-byte handshake: magic, the version range the
// client speaks, two reserved zero bytes.
func Hello(minVer, maxVer byte) [helloSize]byte {
	var h [helloSize]byte
	copy(h[:], Magic[:])
	h[4], h[5] = minVer, maxVer
	return h
}

// Ack renders the server's 8-byte acceptance: magic, the chosen version
// (0 = rejected), three reserved zero bytes.
func Ack(version byte) [helloSize]byte {
	var a [helloSize]byte
	copy(a[:], Magic[:])
	a[4] = version
	return a
}

// ParseHello validates a client hello and returns its version range.
func ParseHello(h [helloSize]byte) (minVer, maxVer byte, err error) {
	if [4]byte(h[:4]) != Magic {
		return 0, 0, fmt.Errorf("%w: bad magic", ErrBadHandshake)
	}
	if h[4] == 0 || h[4] > h[5] {
		return 0, 0, fmt.Errorf("%w: version range [%d,%d]", ErrBadHandshake, h[4], h[5])
	}
	return h[4], h[5], nil
}

// ParseAck validates a server acceptance and returns the chosen version.
// version 0 means the server rejected the client's version range.
func ParseAck(a [helloSize]byte) (version byte, err error) {
	if [4]byte(a[:4]) != Magic {
		return 0, fmt.Errorf("%w: bad magic in ack", ErrBadHandshake)
	}
	return a[4], nil
}

// Negotiate picks the version a server should answer a [minVer, maxVer]
// hello with: the highest version both sides speak, or 0 when the ranges
// are disjoint.
func Negotiate(minVer, maxVer byte) byte {
	return NegotiateCapped(minVer, maxVer, Version)
}

// NegotiateCapped is Negotiate with the local side's maximum pinned below
// the build's Version — the rollback escape hatch (and test hook) for
// serving as an older protocol generation without recompiling. localMax 0
// or above Version means Version.
func NegotiateCapped(minVer, maxVer, localMax byte) byte {
	if localMax == 0 || localMax > Version {
		localMax = Version
	}
	if minVer > localMax {
		return 0
	}
	if maxVer > localMax {
		return localMax
	}
	return maxVer
}

// WriteFrame writes one length-prefixed frame. payload must already start
// with the frame-kind byte.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// frameChunk is the largest frame payload ReadFrame allocates up-front on
// the length prefix alone. Larger frames grow geometrically as bytes
// actually arrive, so a forged header claiming a near-MaxFrame length
// costs one chunk of memory, not the claimed gigabyte.
const frameChunk = 1 << 20

// ReadFrame reads one frame's payload into a buffer from GetBuf (return it
// with PutBuf). A length prefix beyond MaxFrame is rejected without
// allocating, and memory for a large frame is committed only as its bytes
// stream in.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if n <= frameChunk {
		buf := GetBuf(n)
		if _, err := io.ReadFull(r, buf); err != nil {
			PutBuf(buf)
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, frameChunk)
	filled := 0
	for {
		if _, err := io.ReadFull(r, buf[filled:]); err != nil {
			return nil, err
		}
		filled = len(buf)
		if filled == n {
			return buf, nil
		}
		grow := filled * 2
		if grow > n {
			grow = n
		}
		next := make([]byte, grow)
		copy(next, buf)
		buf = next
	}
}

// Buffer pool for frame scratch on both sides of every call. Buffers above
// maxPooledBuf are left to the GC so one snapshot transfer does not pin a
// gigabyte in the pool.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuf returns a pooled buffer of length n (zero-length when building an
// append-style frame).
func GetBuf(n int) []byte {
	bp := bufPool.Get().(*[]byte)
	b := *bp
	if cap(b) < n {
		bufPool.Put(bp)
		return make([]byte, n)
	}
	return b[:n]
}

// PutBuf returns a buffer obtained from GetBuf (or grown from one).
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// --- Append-style encoding primitives -----------------------------------

// AppendUvarint appends v in unsigned LEB128.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends v zigzag-encoded.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendUint32 appends v as 4 fixed little-endian bytes.
func AppendUint32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendUint64 appends v as 8 fixed little-endian bytes.
func AppendUint64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendFloat64 appends v's IEEE bits as 8 fixed bytes.
func AppendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendBool appends one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendString appends a uvarint length followed by the bytes.
func AppendString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends a uvarint length followed by the bytes.
func AppendBytes(b []byte, v []byte) []byte {
	b = AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// AppendUint64s appends a uvarint count followed by fixed 8-byte elements —
// the bulk layout for vertex-id and checksum slices.
func AppendUint64s(b []byte, v []uint64) []byte {
	b = AppendUvarint(b, uint64(len(v)))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, x)
	}
	return b
}

// AppendFloat32s appends a uvarint count followed by fixed 4-byte elements —
// the bulk layout for feature matrices.
func AppendFloat32s(b []byte, v []float32) []byte {
	b = AppendUvarint(b, uint64(len(v)))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(x))
	}
	return b
}

// AppendInt32s appends a uvarint count followed by fixed 4-byte elements.
func AppendInt32s(b []byte, v []int32) []byte {
	b = AppendUvarint(b, uint64(len(v)))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint32(b, uint32(x))
	}
	return b
}

// AppendBools appends a uvarint count followed by one byte per element.
func AppendBools(b []byte, v []bool) []byte {
	b = AppendUvarint(b, uint64(len(v)))
	for _, x := range v {
		b = AppendBool(b, x)
	}
	return b
}

// --- Bounds-checked decoding --------------------------------------------

// Reader decodes one frame. Errors are sticky: after the first failure
// every read returns zero values and Err reports the failure, so decoders
// can run straight-line without per-field checks. All slice reads validate
// the element count against the bytes actually remaining, so a corrupt
// count cannot force a huge allocation.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader decodes from b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the undecoded byte count.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
	r.off = len(r.b)
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bool reads one byte as a boolean.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uvarint reads an unsigned LEB128 value.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zigzag-encoded value.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Uint32 reads 4 fixed little-endian bytes.
func (r *Reader) Uint32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// Uint64 reads 8 fixed little-endian bytes.
func (r *Reader) Uint64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// Float64 reads 8 fixed bytes as IEEE float64.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// Invalidate poisons the decode with ErrTruncated — for callers that
// discover domain-level corruption (an impossible count, an out-of-range
// id) mid-decode.
func (r *Reader) Invalidate() { r.fail() }

// Count reads a uvarint element count and validates count*minElemSize
// against the remaining bytes, failing the decode (instead of allocating)
// when the frame cannot possibly hold that many elements.
func (r *Reader) Count(minElemSize int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Remaining()/minElemSize) {
		r.fail()
		return 0
	}
	return int(n)
}

// String reads a uvarint-length-prefixed string (copied out of the frame).
func (r *Reader) String() string {
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

// Bytes reads a uvarint-length-prefixed byte slice, copied out of the frame
// so the frame buffer can return to its pool.
func (r *Reader) Bytes() []byte {
	n := r.Count(1)
	if r.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	v := make([]byte, n)
	copy(v, r.b[r.off:])
	r.off += n
	return v
}

// Uint64s reads a count-prefixed bulk slice of fixed 8-byte elements.
func (r *Reader) Uint64s() []uint64 {
	n := r.Count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = binary.LittleEndian.Uint64(r.b[r.off:])
		r.off += 8
	}
	return v
}

// Float32s reads a count-prefixed bulk slice of fixed 4-byte elements.
func (r *Reader) Float32s() []float32 {
	n := r.Count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	v := make([]float32, n)
	for i := range v {
		v[i] = math.Float32frombits(binary.LittleEndian.Uint32(r.b[r.off:]))
		r.off += 4
	}
	return v
}

// Int32s reads a count-prefixed bulk slice of fixed 4-byte elements.
func (r *Reader) Int32s() []int32 {
	n := r.Count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(binary.LittleEndian.Uint32(r.b[r.off:]))
		r.off += 4
	}
	return v
}

// Bools reads a count-prefixed slice of one-byte booleans.
func (r *Reader) Bools() []bool {
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	v := make([]bool, n)
	for i := range v {
		v[i] = r.b[r.off] != 0
		r.off++
	}
	return v
}

// Done reports the first decode error, or an error if the frame holds
// trailing bytes the decoder did not consume (a framing bug or corruption,
// either way not a frame to trust).
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes after decode", len(r.b)-r.off)
	}
	return nil
}
