package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"runtime"
	"testing"
)

func TestHandshakeRoundTrip(t *testing.T) {
	h := Hello(1, Version)
	minV, maxV, err := ParseHello(h)
	if err != nil {
		t.Fatalf("ParseHello: %v", err)
	}
	if minV != 1 || maxV != Version {
		t.Fatalf("ParseHello = [%d,%d], want [1,%d]", minV, maxV, Version)
	}
	a := Ack(Version)
	ver, err := ParseAck(a)
	if err != nil {
		t.Fatalf("ParseAck: %v", err)
	}
	if ver != Version {
		t.Fatalf("ParseAck = %d, want %d", ver, Version)
	}
}

func TestParseHelloRejects(t *testing.T) {
	var zero [8]byte
	if _, _, err := ParseHello(zero); err == nil {
		t.Fatal("ParseHello accepted all-zero hello")
	}
	// Gob streams start with a nonzero uvarint length: never the magic.
	gobby := [8]byte{0x1a, 0xff, 0x81, 0x03, 1, 1, 0, 0}
	if _, _, err := ParseHello(gobby); err == nil {
		t.Fatal("ParseHello accepted gob-looking bytes")
	}
	bad := Hello(0, 0) // min version 0 is invalid
	if _, _, err := ParseHello(bad); err == nil {
		t.Fatal("ParseHello accepted version range [0,0]")
	}
	inverted := Hello(2, 1)
	if _, _, err := ParseHello(inverted); err == nil {
		t.Fatal("ParseHello accepted inverted version range")
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		min, max, want byte
	}{
		{1, Version, Version},         // exact overlap
		{1, Version + 5, Version},     // future client: clamp to ours
		{Version + 1, Version + 5, 0}, // future-only client: reject
		{1, 1, 1},                     // old client pinned to v1
	}
	for _, c := range cases {
		if got := Negotiate(c.min, c.max); got != c.want {
			t.Errorf("Negotiate(%d,%d) = %d, want %d", c.min, c.max, got, c.want)
		}
	}
}

func TestNegotiateCapped(t *testing.T) {
	cases := []struct {
		min, max, localMax, want byte
	}{
		{1, Version, 1, 1}, // server capped at v1: v2 client lands on v1
		{1, Version, Version, Version},
		{1, 1, Version, 1},                 // old client against uncapped server
		{2, Version, 1, 0},                 // client requires >= 2, server capped at 1
		{1, Version, 0, Version},           // zero cap means "no cap"
		{1, Version, Version + 9, Version}, // cap above our max clamps to Version
	}
	for _, c := range cases {
		if got := NegotiateCapped(c.min, c.max, c.localMax); got != c.want {
			t.Errorf("NegotiateCapped(%d,%d,%d) = %d, want %d", c.min, c.max, c.localMax, got, c.want)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{KindRequest, 1, 2, 3, 4, 5}
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip = %v, want %v", got, payload)
	}
	PutBuf(got)
}

func TestReadFrameRejectsOversized(t *testing.T) {
	// A corrupt length prefix far beyond MaxFrame must be rejected before
	// any allocation happens.
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadFrame(4GiB prefix) = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte{KindResponse, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(short)); err == nil {
		t.Fatal("ReadFrame accepted truncated frame")
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{4, 0})); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("ReadFrame(truncated header) = %v, want ErrUnexpectedEOF", err)
	}
}

func TestReadFrameLargeRoundTrip(t *testing.T) {
	// A frame bigger than frameChunk exercises the incremental-growth read
	// path and must still round-trip byte-exact.
	payload := make([]byte, 3*frameChunk+17)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	payload[0] = KindResponse
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("large frame round trip mismatch: %d vs %d bytes", len(got), len(payload))
	}
}

func TestReadFrameForgedLengthBounded(t *testing.T) {
	// A header claiming a near-MaxFrame payload followed by almost no data
	// must fail on the missing bytes without committing the claimed memory:
	// the read path may only allocate for bytes that actually arrived (one
	// chunk here), not the advertised gigabyte.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame)
	stream := append(hdr[:], make([]byte, 10)...)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := ReadFrame(bytes.NewReader(stream)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("ReadFrame(forged length) = %v, want ErrUnexpectedEOF", err)
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 8*frameChunk {
		t.Fatalf("forged 1GiB length prefix allocated %d bytes; want ≤ %d", grew, 8*frameChunk)
	}
}

func TestPrimitivesRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, math.MaxUint64)
	b = AppendVarint(b, -1234567)
	b = AppendVarint(b, math.MinInt64)
	b = AppendUint32(b, 0xdeadbeef)
	b = AppendUint64(b, 0x0123456789abcdef)
	b = AppendFloat64(b, -math.Pi)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendString(b, "héllo wire")
	b = AppendBytes(b, []byte{0, 1, 2})
	b = AppendUint64s(b, []uint64{7, 8, 9})
	b = AppendFloat32s(b, []float32{1.5, -2.25})
	b = AppendInt32s(b, []int32{-3, 4})
	b = AppendBools(b, []bool{true, false, true})

	r := NewReader(b)
	if v := r.Uvarint(); v != 0 {
		t.Fatalf("Uvarint = %d", v)
	}
	if v := r.Uvarint(); v != math.MaxUint64 {
		t.Fatalf("Uvarint = %d", v)
	}
	if v := r.Varint(); v != -1234567 {
		t.Fatalf("Varint = %d", v)
	}
	if v := r.Varint(); v != math.MinInt64 {
		t.Fatalf("Varint = %d", v)
	}
	if v := r.Uint32(); v != 0xdeadbeef {
		t.Fatalf("Uint32 = %x", v)
	}
	if v := r.Uint64(); v != 0x0123456789abcdef {
		t.Fatalf("Uint64 = %x", v)
	}
	if v := r.Float64(); v != -math.Pi {
		t.Fatalf("Float64 = %v", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if v := r.String(); v != "héllo wire" {
		t.Fatalf("String = %q", v)
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte{0, 1, 2}) {
		t.Fatalf("Bytes = %v", v)
	}
	if v := r.Uint64s(); !reflect.DeepEqual(v, []uint64{7, 8, 9}) {
		t.Fatalf("Uint64s = %v", v)
	}
	if v := r.Float32s(); !reflect.DeepEqual(v, []float32{1.5, -2.25}) {
		t.Fatalf("Float32s = %v", v)
	}
	if v := r.Int32s(); !reflect.DeepEqual(v, []int32{-3, 4}) {
		t.Fatalf("Int32s = %v", v)
	}
	if v := r.Bools(); !reflect.DeepEqual(v, []bool{true, false, true}) {
		t.Fatalf("Bools = %v", v)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{0x01})
	r.Uint64() // truncated: fails
	if r.Err() == nil {
		t.Fatal("expected sticky error after truncated Uint64")
	}
	// Every later read must return zero values, not panic or advance.
	if r.Byte() != 0 || r.Uvarint() != 0 || r.String() != "" || r.Bytes() != nil {
		t.Fatal("reads after sticky error returned nonzero values")
	}
	if r.Done() == nil {
		t.Fatal("Done must report the sticky error")
	}
}

func TestReaderCountRejectsHugeCounts(t *testing.T) {
	// A frame claiming 2^40 uint64s in 9 bytes must fail, not allocate 8TiB.
	b := AppendUvarint(nil, 1<<40)
	r := NewReader(b)
	if v := r.Uint64s(); v != nil {
		t.Fatalf("Uint64s on corrupt count = %v", v)
	}
	if r.Err() == nil {
		t.Fatal("corrupt count must poison the reader")
	}
}

func TestReaderTrailingBytes(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.Byte()
	if err := r.Done(); err == nil {
		t.Fatal("Done must reject trailing bytes")
	}
}

func TestReaderInvalidate(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.Invalidate()
	if r.Err() == nil || r.Done() == nil {
		t.Fatal("Invalidate must poison the reader")
	}
	if r.Byte() != 0 {
		t.Fatal("read after Invalidate returned data")
	}
}

func TestBufPool(t *testing.T) {
	b := GetBuf(100)
	if len(b) != 100 {
		t.Fatalf("GetBuf(100) len = %d", len(b))
	}
	PutBuf(b)
	big := GetBuf(maxPooledBuf + 1)
	if len(big) != maxPooledBuf+1 {
		t.Fatalf("GetBuf(big) len = %d", len(big))
	}
	PutBuf(big) // must not retain; just exercises the cap check
}

// FuzzReader drives the decoding primitives over arbitrary frames: no input
// may panic or allocate beyond the frame's own size, and Done must be
// reachable on every path.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Add(AppendString(AppendUvarint(nil, 3), "abc"))
	f.Add(AppendUint64s(nil, []uint64{1, 2, 3}))
	f.Add(AppendUvarint(nil, 1<<40)) // huge count
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		// A representative mix of reads; sticky errors make order safe.
		r.Byte()
		r.Uvarint()
		r.Varint()
		r.Uint32()
		r.Uint64()
		_ = r.String()
		r.Bytes()
		r.Uint64s()
		r.Float32s()
		r.Int32s()
		r.Bools()
		_ = r.Done()
	})
}

// FuzzFrame round-trips arbitrary payloads through Write/ReadFrame and
// feeds arbitrary bytes to ReadFrame directly.
func FuzzFrame(f *testing.F) {
	f.Add([]byte{KindRequest, 1, 2, 3})
	// Envelope request: priority 1, budget 250ms, method 3, two arg bytes.
	env := []byte{KindRequestEnv, 1}
	env = AppendUvarint(env, 250)
	env = AppendUvarint(env, 3)
	f.Add(append(env, 0xaa, 0xbb))
	f.Add([]byte{KindRequestEnv})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Interpretation 1: data is a payload. Must round-trip exactly.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, data); err == nil {
			got, err := ReadFrame(&buf)
			if err != nil {
				t.Fatalf("ReadFrame after WriteFrame: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("frame round trip mismatch: %d vs %d bytes", len(got), len(data))
			}
			PutBuf(got)
		}
		// Interpretation 2: data is a raw stream. Must error or yield a
		// frame, never panic or over-allocate.
		if got, err := ReadFrame(bytes.NewReader(data)); err == nil {
			PutBuf(got)
		}
	})
}
