package bench

import "fmt"

// Experiments maps experiment IDs (DESIGN.md's per-experiment index) to
// their runners.
var Experiments = map[string]func(Config){
	"table2":   RunTable2,
	"fig8":     RunFig8Table4,
	"table4":   RunFig8Table4,
	"fig9":     RunFig9,
	"table5":   RunTable5,
	"fig10":    RunFig10,
	"fig11":    RunFig11,
	"gnn":      RunGNN,
	"ablation": RunAblations,
	"cluster":  RunCluster,
	"perf":     RunPerfTable,
}

// Order is the presentation order for RunAll.
var Order = []string{"table2", "fig8", "fig9", "table5", "fig10", "fig11", "ablation", "cluster", "gnn"}

// RunAll executes every experiment in paper order (fig8 covers table4).
func RunAll(cfg Config) {
	cfg = cfg.WithDefaults()
	fmt.Fprintf(cfg.Out, "PlatoD2GL evaluation harness — %d logical edges per dataset, %d workers, seed %d\n",
		cfg.TargetEdges, cfg.Workers, cfg.Seed)
	for _, id := range Order {
		Experiments[id](cfg)
	}
}
