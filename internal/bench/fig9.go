package bench

import (
	"fmt"
	"time"

	"platod2gl/internal/dataset"
	"platod2gl/internal/storage"
)

// RunFig9 regenerates Fig. 9: dynamic-update latency per batch on the
// WeChat workload as the batch size grows, PlatoGL vs PlatoD2GL (plus the
// w/o CP ablation). Each store is pre-loaded with a base graph, then timed
// on DynamicMix batches (inserts + repeat interactions + weight updates +
// deletions — the traffic that punishes O(n) CSTable maintenance).
func RunFig9(cfg Config) {
	cfg = cfg.WithDefaults()
	header(cfg, "Fig. 9 — dynamic update time per batch vs batch size (WeChat)")
	spec := WeChatScaled(cfg.TargetEdges)
	systems := []SystemName{SysPlatoGL, SysD2GL, SysD2GLNoCP}
	stores := make(map[SystemName]storage.TopologyStore, len(systems))
	for _, sys := range systems {
		st := NewStore(sys, cfg.Workers)
		Load(st, spec, dataset.BuildMix, cfg.TargetEdges, cfg.BatchSize, cfg.Seed)
		stores[sys] = st
	}
	w := tab(cfg)
	fmt.Fprintln(w, "batch\tPlatoGL\tPlatoD2GL\tw/o CP\tspeedup")
	for _, batch := range []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		if int64(batch) > cfg.TargetEdges {
			break
		}
		times := make(map[SystemName]time.Duration, len(systems))
		for _, sys := range systems {
			// Fresh deterministic traffic per system so each store sees the
			// same logical updates.
			batches := PrepareBatches(spec, dataset.DynamicMix, 4, batch, cfg.Seed+7)
			var total time.Duration
			for _, events := range batches {
				start := time.Now()
				stores[sys].ApplyBatch(events)
				total += time.Since(start)
			}
			times[sys] = total / time.Duration(len(batches))
		}
		fmt.Fprintf(w, "2^%d\t%s\t%s\t%s\t%.1fx\n",
			log2(batch), fmtDur(times[SysPlatoGL]), fmtDur(times[SysD2GL]),
			fmtDur(times[SysD2GLNoCP]),
			float64(times[SysPlatoGL])/float64(times[SysD2GL]))
	}
	w.Flush()
	fmt.Fprintln(cfg.Out, "expected shape: PlatoD2GL faster at every batch size (paper: up to 5.4x; <20ms at 2^16 vs >120ms).")
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
