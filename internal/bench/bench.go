// Package bench is the experiment harness that regenerates every table and
// figure of the PlatoD2GL paper's evaluation (Sec. VII) against the
// reimplemented systems. Each experiment prints rows in the shape the paper
// reports (time per batch, memory after building, operation shares, ...);
// absolute values differ from the paper's testbed, the comparisons are what
// must hold. cmd/platod2gl-bench drives it; EXPERIMENTS.md records
// paper-vs-measured values.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"platod2gl/internal/baseline/aligraph"
	"platod2gl/internal/baseline/platogl"
	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/graph"
	"platod2gl/internal/storage"
)

// Config controls experiment scale. The defaults finish a full run in a few
// minutes on a laptop; the paper's full-scale graphs are scaled down per the
// substitution rules in DESIGN.md.
type Config struct {
	// TargetEdges is the per-dataset logical edge budget (the generator
	// doubles it with reverse edges).
	TargetEdges int64
	// BatchSize is the event batch size used while building graphs.
	BatchSize int
	// Workers bounds update parallelism during builds.
	Workers int
	// Seed drives every generator.
	Seed int64
	// Out receives the formatted tables.
	Out io.Writer
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.TargetEdges == 0 {
		c.TargetEdges = 150_000
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8192
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// SystemName identifies a storage engine under test.
type SystemName string

// The four engines of the paper's comparison.
const (
	SysAliGraph SystemName = "AliGraph"
	SysPlatoGL  SystemName = "PlatoGL"
	SysD2GL     SystemName = "PlatoD2GL"
	SysD2GLNoCP SystemName = "w/o CP"
)

// NewStore builds a fresh store for the named system.
func NewStore(name SystemName, workers int) storage.TopologyStore {
	switch name {
	case SysAliGraph:
		return aligraph.New(aligraph.Options{Workers: workers})
	case SysPlatoGL:
		return platogl.New(platogl.Options{Workers: workers})
	case SysD2GL:
		return storage.NewDynamicStore(storage.Options{
			Tree: core.Options{Compress: true}, Workers: workers})
	case SysD2GLNoCP:
		return storage.NewDynamicStore(storage.Options{
			Tree: core.Options{Compress: false}, Workers: workers})
	default:
		panic(fmt.Sprintf("bench: unknown system %q", name))
	}
}

// AllSystems is the paper's comparison order.
var AllSystems = []SystemName{SysAliGraph, SysPlatoGL, SysD2GL, SysD2GLNoCP}

// Datasets returns the three evaluation specs scaled to the edge budget.
func Datasets(target int64) []*dataset.Spec {
	specs := []*dataset.Spec{dataset.OGBNSim(), dataset.RedditSim(), dataset.WeChatSim()}
	out := make([]*dataset.Spec, len(specs))
	for i, s := range specs {
		out[i] = s.Scale(float64(target) / float64(s.TotalEvents()))
		out[i].Name = specs[i].Name // keep the clean label
	}
	return out
}

// WeChatScaled returns the WeChat spec scaled to the edge budget.
func WeChatScaled(target int64) *dataset.Spec {
	s := dataset.WeChatSim()
	out := s.Scale(float64(target) / float64(s.TotalEvents()))
	out.Name = "WeChat"
	return out
}

// Load streams spec events into the store in batches, returning the build
// wall time. Generation happens outside the timed region.
func Load(store storage.TopologyStore, spec *dataset.Spec, mix dataset.Mix, target int64, batch int, seed int64) time.Duration {
	gen := dataset.NewGenerator(spec, mix, seed)
	var total time.Duration
	remaining := target
	for remaining > 0 {
		n := int64(batch)
		if n > remaining {
			n = remaining
		}
		events := gen.Next(int(n))
		start := time.Now()
		store.ApplyBatch(events)
		total += time.Since(start)
		remaining -= n
	}
	return total
}

// PrepareBatches pre-generates event batches so timed regions exclude
// generation.
func PrepareBatches(spec *dataset.Spec, mix dataset.Mix, nBatches, batchSize int, seed int64) [][]graph.Event {
	gen := dataset.NewGenerator(spec, mix, seed)
	out := make([][]graph.Event, nBatches)
	for i := range out {
		out[i] = gen.Next(batchSize)
	}
	return out
}

// tab returns a tabwriter over the config output.
func tab(cfg Config) *tabwriter.Writer {
	return tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
}

func header(cfg Config, title string) {
	fmt.Fprintf(cfg.Out, "\n=== %s ===\n", title)
}

// fmtDur renders a duration in ms with sub-ms precision.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

// fmtBytes renders a byte count human-readably.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
