package bench

import (
	"fmt"
	"time"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/graph"
	"platod2gl/internal/storage"
)

// RunAblations isolates the design choices DESIGN.md calls out, each as a
// single-variable experiment on the WeChat workload:
//
//  1. FSTable vs CSTable in samtree leaves (the core Table II claim,
//     embedded in the full system);
//  2. α-Split vs sort-based splitting (the Sec. IV-C "greedy method");
//  3. CP-IDs compression on/off (time cost of the memory savings);
//  4. batched (PALM-style) vs one-by-one update application.
func RunAblations(cfg Config) {
	cfg = cfg.WithDefaults()
	spec := WeChatScaled(cfg.TargetEdges)

	header(cfg, "Ablation 1 — leaf weight table: FSTable (FTS) vs CSTable (ITS)")
	{
		// Large leaves (capacity 4096) so the ITS leaf's O(n) update cost is
		// visible; at the default 256 the leaf bound caps the damage.
		w := tab(cfg)
		fmt.Fprintln(w, "leaf table\tbuild+update time (capacity 4096)")
		for _, kind := range []core.LeafTableKind{core.LeafFTS, core.LeafITS} {
			st := storage.NewDynamicStore(storage.Options{
				Tree:    core.Options{Capacity: 4096, Compress: true, LeafTable: kind},
				Workers: cfg.Workers,
			})
			dur := Load(st, spec, dataset.DynamicMix, cfg.TargetEdges, cfg.BatchSize, cfg.Seed)
			fmt.Fprintf(w, "%s\t%.3fs\n", kind, dur.Seconds())
		}
		w.Flush()
		fmt.Fprintln(cfg.Out, "expected shape: FTS at least on par; the gap is bounded by leaf capacity (the samtree structure itself caps n_L), so it is small end-to-end and large in the Table II micro-benchmarks.")
	}

	header(cfg, "Ablation 2 — leaf split strategy: α-Split vs sort")
	{
		w := tab(cfg)
		fmt.Fprintln(w, "strategy\tbuild time")
		for _, strat := range []core.SplitStrategy{core.SplitAlpha, core.SplitSort} {
			st := storage.NewDynamicStore(storage.Options{
				Tree:    core.Options{Compress: true, Split: strat},
				Workers: cfg.Workers,
			})
			dur := Load(st, spec, dataset.BuildMix, cfg.TargetEdges, cfg.BatchSize, cfg.Seed)
			fmt.Fprintf(w, "%s\t%.3fs\n", strat, dur.Seconds())
		}
		w.Flush()
		fmt.Fprintln(cfg.Out, "expected shape: alpha at least on par (splits are rare at capacity 256; the gap widens with split frequency).")
	}

	header(cfg, "Ablation 3 — CP-IDs compression: build time and memory")
	{
		w := tab(cfg)
		fmt.Fprintln(w, "compression\tbuild time\tmemory")
		for _, cp := range []bool{true, false} {
			st := storage.NewDynamicStore(storage.Options{
				Tree:    core.Options{Compress: cp},
				Workers: cfg.Workers,
			})
			dur := Load(st, spec, dataset.BuildMix, cfg.TargetEdges, cfg.BatchSize, cfg.Seed)
			label := "CP on"
			if !cp {
				label = "CP off"
			}
			fmt.Fprintf(w, "%s\t%.3fs\t%s\n", label, dur.Seconds(), fmtBytes(st.MemoryBytes()))
		}
		w.Flush()
		fmt.Fprintln(cfg.Out, "expected shape: comparable time, 18-30% less memory with CP (Table IV's w/o CP column).")
	}

	header(cfg, "Ablation 4 — batched (PALM) vs one-by-one update application")
	{
		base := func() storage.TopologyStore {
			st := NewStore(SysD2GL, cfg.Workers)
			Load(st, spec, dataset.BuildMix, cfg.TargetEdges/2, cfg.BatchSize, cfg.Seed)
			return st
		}
		batches := PrepareBatches(spec, dataset.DynamicMix, 6, 1<<13, cfg.Seed+21)
		w := tab(cfg)
		fmt.Fprintln(w, "mode\ttime/batch (2^13 events)")

		stBatch := base()
		var tBatch time.Duration
		for _, events := range batches {
			start := time.Now()
			stBatch.ApplyBatch(events)
			tBatch += time.Since(start)
		}
		fmt.Fprintf(w, "batched\t%s\n", fmtDur(tBatch/time.Duration(len(batches))))

		stSingle := base()
		batches2 := PrepareBatches(spec, dataset.DynamicMix, 6, 1<<13, cfg.Seed+21)
		var tSingle time.Duration
		for _, events := range batches2 {
			start := time.Now()
			for _, ev := range events {
				switch ev.Kind {
				case graph.AddEdge:
					stSingle.AddEdge(ev.Edge)
				case graph.DeleteEdge:
					stSingle.DeleteEdge(ev.Edge.Src, ev.Edge.Dst, ev.Edge.Type)
				case graph.UpdateWeight:
					stSingle.UpdateWeight(ev.Edge.Src, ev.Edge.Dst, ev.Edge.Type, ev.Edge.Weight)
				}
			}
			tSingle += time.Since(start)
		}
		fmt.Fprintf(w, "one-by-one\t%s\n", fmtDur(tSingle/time.Duration(len(batches2))))
		w.Flush()
		fmt.Fprintln(cfg.Out, "expected shape: batched at least on par (on a single-core host the plan/sort overhead offsets the per-op savings; the batched path wins with parallel workers).")
	}
}
