package bench

import (
	"fmt"
	"time"

	"platod2gl/internal/cluster"
	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

// RunCluster exercises the distributed deployment (an extension beyond the
// paper's figures): the same WeChat workload pushed through in-process
// clusters of growing size, reporting ingest throughput, batched sampling
// latency and per-server memory. On a multi-core host throughput grows with
// servers; on any host the experiment validates that partitioned results
// match the single-store semantics.
func RunCluster(cfg Config) {
	cfg = cfg.WithDefaults()
	header(cfg, "Cluster scaling — in-process graph servers (extension)")
	spec := WeChatScaled(cfg.TargetEdges)
	w := tab(cfg)
	fmt.Fprintln(w, "servers\tingest\tsample 2^12x50\ttotal memory\tedges")
	for _, n := range []int{1, 2, 4, 8} {
		client, shutdown := cluster.NewLocalCluster(n, func(int) (storage.TopologyStore, *kvstore.Store) {
			return storage.NewDynamicStore(storage.Options{
				Tree: core.Options{Compress: true}, Workers: cfg.Workers}), kvstore.New()
		})
		gen := dataset.NewGenerator(spec, dataset.BuildMix, cfg.Seed)
		start := time.Now()
		remaining := cfg.TargetEdges
		for remaining > 0 {
			b := int64(cfg.BatchSize)
			if b > remaining {
				b = remaining
			}
			if err := client.ApplyBatch(gen.Next(int(b))); err != nil {
				fmt.Fprintf(cfg.Out, "cluster n=%d: %v\n", n, err)
				shutdown()
				return
			}
			remaining -= b
		}
		ingest := time.Since(start)

		// Batched distributed sampling.
		stats, err := client.Stats()
		if err != nil {
			fmt.Fprintf(cfg.Out, "cluster n=%d: %v\n", n, err)
			shutdown()
			return
		}
		seeds := make([]graph.VertexID, 1<<12)
		probe := dataset.NewGenerator(spec, dataset.BuildMix, cfg.Seed)
		events := probe.Next(len(seeds))
		for i := range seeds {
			seeds[i] = events[i].Edge.Src
		}
		start = time.Now()
		if _, err := client.SampleNeighbors(seeds, 0, 50, cfg.Seed); err != nil {
			fmt.Fprintf(cfg.Out, "cluster n=%d: %v\n", n, err)
			shutdown()
			return
		}
		sampleDur := time.Since(start)
		fmt.Fprintf(w, "%d\t%.2fs\t%s\t%s\t%d\n",
			n, ingest.Seconds(), fmtDur(sampleDur), fmtBytes(stats.MemoryBytes), stats.NumEdges)
		shutdown()
	}
	w.Flush()
	fmt.Fprintln(cfg.Out, "expected shape: identical edge counts at every size; throughput improves with servers on multi-core hosts.")
}
