package bench

import (
	"fmt"
	"time"

	"platod2gl/internal/dataset"
	"platod2gl/internal/graph"
	"platod2gl/internal/sampler"
	"platod2gl/internal/storage"
)

// RunFig10 regenerates Fig. 10: (a-c) neighbor-sampling latency (50
// neighbors per seed) and (d-f) 2-hop subgraph-sampling latency, per batch
// size, on the three datasets, across systems.
func RunFig10(cfg Config) {
	cfg = cfg.WithDefaults()
	for _, spec := range Datasets(cfg.TargetEdges) {
		// Build every system once per dataset.
		systems := []SystemName{SysAliGraph, SysPlatoGL, SysD2GL, SysD2GLNoCP}
		stores := map[SystemName]storage.TopologyStore{}
		for _, sys := range systems {
			st := NewStore(sys, cfg.Workers)
			Load(st, spec, dataset.BuildMix, cfg.TargetEdges, cfg.BatchSize, cfg.Seed)
			stores[sys] = st
		}
		seedsPool := stores[SysD2GL].Sources(0)
		if len(seedsPool) == 0 {
			continue
		}

		header(cfg, fmt.Sprintf("Fig. 10(a-c) — neighbor sampling (50/seed), %s", spec.Name))
		w := tab(cfg)
		fmt.Fprintln(w, "batch\tAliGraph\tPlatoGL\tPlatoD2GL\tw/o CP\tspeedup vs PlatoGL")
		for _, batch := range []int{1 << 8, 1 << 10, 1 << 12, 1 << 14} {
			seeds := pickSeeds(seedsPool, batch)
			times := map[SystemName]time.Duration{}
			for _, sys := range systems {
				smp := sampler.New(stores[sys], sampler.Options{Parallelism: cfg.Workers, Seed: cfg.Seed})
				start := time.Now()
				smp.SampleNeighbors(seeds, 0, 50)
				times[sys] = time.Since(start)
			}
			fmt.Fprintf(w, "2^%d\t%s\t%s\t%s\t%s\t%.1fx\n",
				log2(batch), fmtDur(times[SysAliGraph]), fmtDur(times[SysPlatoGL]),
				fmtDur(times[SysD2GL]), fmtDur(times[SysD2GLNoCP]),
				float64(times[SysPlatoGL])/float64(times[SysD2GL]))
		}
		w.Flush()

		header(cfg, fmt.Sprintf("Fig. 10(d-f) — 2-hop subgraph sampling (25,10), %s", spec.Name))
		w = tab(cfg)
		fmt.Fprintln(w, "batch\tAliGraph\tPlatoGL\tPlatoD2GL\tw/o CP\tspeedup vs PlatoGL")
		// The reverse relation exists for every dataset (bi-directed), so a
		// 2-hop forward/backward meta-path always has fan-out at hop 2.
		path := graph.MetaPath{0, dataset.ReverseOffset}
		for _, batch := range []int{1 << 8, 1 << 10, 1 << 12} {
			seeds := pickSeeds(seedsPool, batch)
			times := map[SystemName]time.Duration{}
			for _, sys := range systems {
				smp := sampler.New(stores[sys], sampler.Options{Parallelism: cfg.Workers, Seed: cfg.Seed})
				start := time.Now()
				smp.SampleSubgraph(seeds, path, []int{25, 10})
				times[sys] = time.Since(start)
			}
			fmt.Fprintf(w, "2^%d\t%s\t%s\t%s\t%s\t%.1fx\n",
				log2(batch), fmtDur(times[SysAliGraph]), fmtDur(times[SysPlatoGL]),
				fmtDur(times[SysD2GL]), fmtDur(times[SysD2GLNoCP]),
				float64(times[SysPlatoGL])/float64(times[SysD2GL]))
		}
		w.Flush()
	}
	fmt.Fprintln(cfg.Out, "expected shape: time grows with batch size; PlatoD2GL at least on par with PlatoGL (paper: up to 2.9x neighbor, 10.1x subgraph).")
}

func pickSeeds(pool []graph.VertexID, n int) []graph.VertexID {
	out := make([]graph.VertexID, n)
	for i := range out {
		out[i] = pool[i%len(pool)]
	}
	return out
}
