package bench

import (
	"bytes"
	"strings"
	"testing"

	"platod2gl/internal/dataset"
)

// tinyConfig keeps harness smoke tests fast.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{TargetEdges: 4000, BatchSize: 1024, Workers: 2, Seed: 1, Out: buf}.WithDefaults()
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.TargetEdges == 0 || c.BatchSize == 0 || c.Workers == 0 || c.Seed == 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}

func TestNewStoreAllSystems(t *testing.T) {
	for _, sys := range AllSystems {
		st := NewStore(sys, 1)
		if st == nil {
			t.Fatalf("NewStore(%s) = nil", sys)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown system")
		}
	}()
	NewStore("nope", 1)
}

func TestDatasetsScaledToBudget(t *testing.T) {
	for _, spec := range Datasets(10000) {
		total := spec.TotalEvents()
		if total < 5000 || total > 20000 {
			t.Fatalf("%s scaled to %d events, want ~10000", spec.Name, total)
		}
	}
}

func TestLoadBuildsGraph(t *testing.T) {
	spec := WeChatScaled(5000)
	st := NewStore(SysD2GL, 2)
	dur := Load(st, spec, dataset.BuildMix, 5000, 512, 1)
	if dur <= 0 {
		t.Fatal("Load reported non-positive duration")
	}
	// Bi-directed: close to 2x logical edges (repeat interactions collapse
	// some).
	if st.NumEdges() < 5000 {
		t.Fatalf("loaded only %d edges", st.NumEdges())
	}
}

func TestRunTable2Smoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	RunTable2(cfg)
	out := buf.String()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "FTS upd") {
		t.Fatalf("unexpected output: %s", out)
	}
}

func TestRunFig8Table4Smoke(t *testing.T) {
	var buf bytes.Buffer
	RunFig8Table4(tinyConfig(&buf))
	out := buf.String()
	for _, want := range []string{"Fig. 8", "Table IV", "OGBN", "Reddit", "WeChat", "PlatoD2GL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig9Smoke(t *testing.T) {
	var buf bytes.Buffer
	RunFig9(tinyConfig(&buf))
	if !strings.Contains(buf.String(), "Fig. 9") {
		t.Fatalf("output: %s", buf.String())
	}
}

func TestRunTable5Smoke(t *testing.T) {
	var buf bytes.Buffer
	RunTable5(tinyConfig(&buf))
	out := buf.String()
	if !strings.Contains(out, "1024") {
		t.Fatalf("output: %s", out)
	}
}

func TestRunFig10Smoke(t *testing.T) {
	var buf bytes.Buffer
	RunFig10(tinyConfig(&buf))
	out := buf.String()
	if !strings.Contains(out, "Fig. 10(a-c)") || !strings.Contains(out, "Fig. 10(d-f)") {
		t.Fatalf("output: %s", out)
	}
}

func TestRunFig11Smoke(t *testing.T) {
	var buf bytes.Buffer
	RunFig11(tinyConfig(&buf))
	out := buf.String()
	for _, want := range []string{"11(a)", "11(b)", "11(c)", "11(d)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestRunGNNSmoke(t *testing.T) {
	var buf bytes.Buffer
	RunGNN(tinyConfig(&buf))
	if !strings.Contains(buf.String(), "SAGE acc") {
		t.Fatalf("output: %s", buf.String())
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtBytes(2 << 30); got != "2.00GB" {
		t.Fatalf("fmtBytes = %q", got)
	}
	if got := fmtBytes(512); got != "512B" {
		t.Fatalf("fmtBytes = %q", got)
	}
	if log2(1<<14) != 14 {
		t.Fatal("log2 wrong")
	}
}

func TestRunAblationsSmoke(t *testing.T) {
	var buf bytes.Buffer
	RunAblations(tinyConfig(&buf))
	out := buf.String()
	for _, want := range []string{"Ablation 1", "Ablation 2", "Ablation 3", "Ablation 4", "FTS", "alpha", "batched"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestRunClusterSmoke(t *testing.T) {
	var buf bytes.Buffer
	RunCluster(tinyConfig(&buf))
	out := buf.String()
	if !strings.Contains(out, "Cluster scaling") || !strings.Contains(out, "servers") {
		t.Fatalf("output: %s", out)
	}
}
