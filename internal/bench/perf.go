// Machine-readable performance benchmark: a pinned-size, deterministic run
// covering the system's hot paths — samtree single-edge and batch update
// throughput, FTS sampling latency quantiles, and pipelined training-epoch
// throughput with its stage breakdown. cmd/platod2gl-bench -json writes the
// result as BENCH_<rev>.json, and internal/bench/regress compares two such
// files in CI to catch performance regressions.
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"platod2gl/internal/checkpoint"
	"platod2gl/internal/cluster"
	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/gnn"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/pipeline"
	"platod2gl/internal/sampler"
	"platod2gl/internal/serve"
	"platod2gl/internal/storage"
	"platod2gl/internal/view"
)

// PerfResult is one benchmark run's machine-readable report. Metric names
// carry their regression direction in the suffix (see regress.DirectionOf):
// *_per_sec is higher-better, *_ns / *_nanos / *_ms / *_bytes are
// lower-better, anything else is informational.
type PerfResult struct {
	Rev     string             `json:"rev"`
	Go      string             `json:"go"`
	Edges   int64              `json:"edges"`
	Seed    int64              `json:"seed"`
	Metrics map[string]float64 `json:"metrics"`
}

// RunPerf executes the benchmark at cfg's scale and returns the report.
// Everything is seeded from cfg.Seed: the same binary at the same scale
// visits identical edges, sampling calls, and training batches.
func RunPerf(cfg Config) PerfResult {
	cfg = cfg.WithDefaults()
	res := PerfResult{
		Go:      runtime.Version(),
		Edges:   cfg.TargetEdges,
		Seed:    cfg.Seed,
		Metrics: make(map[string]float64),
	}
	perfSamtree(cfg, res.Metrics)
	perfEpoch(cfg, res.Metrics)
	perfServe(cfg, res.Metrics)
	perfRPC(cfg, res.Metrics)
	perfOverload(cfg, res.Metrics)
	for k, v := range cluster.CodecBenchMetrics() {
		res.Metrics[k] = v
	}
	return res
}

// perfRPC measures remote sampling throughput through an in-process cluster
// under both RPC codecs — the binary wire protocol and the legacy gob
// fallback — at a pinned workload size. One round is one training-loop
// remote sampling step: a seed-batch neighbor fan-out followed by the
// feature fetch for every sampled neighbor (what Trainer.SampleBatch does
// against a cluster view). The wire/gob pair gates codec regressions from
// either direction; rpc_wire_speedup is the headline ratio (informational:
// it moves when either side does).
func perfRPC(cfg Config, out map[string]float64) {
	const (
		servers   = 4
		rpcEdges  = 100_000
		seedBatch = 512
		fanout    = 10
		featDim   = 64
		rounds    = 30
	)
	run := func(proto cluster.Protocol) (perSec, payloadAvg float64) {
		srvM := &cluster.Metrics{}
		opts := cluster.DefaultOptions()
		opts.Protocol = proto
		lc := cluster.NewLocalClusterOptions(servers, cluster.LocalOptions{
			ServiceFactory: func(int) *cluster.Service {
				svc := cluster.NewService(storage.NewDynamicStore(storage.Options{
					Tree: core.Options{Compress: true}, Workers: cfg.Workers}), kvstore.New())
				svc.SetMetrics(srvM)
				return svc
			},
			Client: opts,
		})
		defer lc.Shutdown()
		client := lc.Client()

		spec := WeChatScaled(rpcEdges)
		gen := dataset.NewGenerator(spec, dataset.BuildMix, cfg.Seed)
		remaining := int64(rpcEdges)
		for remaining > 0 {
			b := int64(cfg.BatchSize)
			if b > remaining {
				b = remaining
			}
			if err := client.ApplyBatch(gen.Next(int(b))); err != nil {
				panic(fmt.Sprintf("bench: perfRPC ingest: %v", err))
			}
			remaining -= b
		}
		probe := dataset.NewGenerator(spec, dataset.BuildMix, cfg.Seed)
		seeds := make([]graph.VertexID, seedBatch)
		events := probe.Next(seedBatch)
		for i := range seeds {
			seeds[i] = events[i].Edge.Src
		}
		// Populate real feature rows for every node the measured rounds will
		// touch (sampling is seeded, so a warmup pass visits the same
		// frontier). Unpopulated features would come back as all-zero rows,
		// which gob run-length-compresses — not representative of trained
		// embeddings.
		rng := rand.New(rand.NewSource(cfg.Seed))
		frontier := map[graph.VertexID]bool{}
		for _, s := range seeds {
			frontier[s] = true
		}
		for r := 0; r < rounds; r++ {
			neigh, err := client.SampleNeighbors(seeds, 0, fanout, cfg.Seed+int64(r))
			if err != nil {
				panic(fmt.Sprintf("bench: perfRPC warmup: %v", err))
			}
			for _, n := range neigh {
				frontier[n] = true
			}
		}
		const setChunk = 4096
		nodes := make([]graph.VertexID, 0, len(frontier))
		for n := range frontier {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for lo := 0; lo < len(nodes); lo += setChunk {
			hi := lo + setChunk
			if hi > len(nodes) {
				hi = len(nodes)
			}
			chunk := nodes[lo:hi]
			data := make([]float32, len(chunk)*featDim)
			for i := range data {
				data[i] = rng.Float32()
			}
			if err := client.SetFeatures(chunk, featDim, data, nil); err != nil {
				panic(fmt.Sprintf("bench: perfRPC set features: %v", err))
			}
		}
		// (Warmup SampleNeighbors calls repeat the measured rounds exactly, so
		// they do not skew the per-call payload average.)

		start := time.Now()
		for r := 0; r < rounds; r++ {
			neigh, err := client.SampleNeighbors(seeds, 0, fanout, cfg.Seed+int64(r))
			if err != nil {
				panic(fmt.Sprintf("bench: perfRPC sample: %v", err))
			}
			if _, err := client.Features(neigh, featDim); err != nil {
				panic(fmt.Sprintf("bench: perfRPC features: %v", err))
			}
		}
		perSec = rate(rounds*seedBatch, time.Since(start))
		var sum, count int64
		for _, method := range []string{"SampleNeighbors", "Features"} {
			s := srvM.PayloadBytes.With(method).Snapshot()
			sum += s.Sum
			count += s.Count
		}
		if count > 0 {
			payloadAvg = float64(sum) / float64(count)
		}
		return perSec, payloadAvg
	}
	wirePS, wireBytes := run(cluster.ProtoWire)
	gobPS, gobBytes := run(cluster.ProtoGob)
	out["rpc_sample_wire_per_sec"] = wirePS
	out["rpc_sample_gob_per_sec"] = gobPS
	out["rpc_sample_wire_payload_bytes"] = wireBytes
	out["rpc_sample_gob_payload_bytes"] = gobBytes
	if gobPS > 0 {
		out["rpc_wire_speedup"] = wirePS / gobPS
	}
}

// perfOverload measures interactive goodput through the server-side
// admission gate under deliberate over-subscription: one server with a
// tight gate (1 slot, 2-deep queue) takes budget-bounded sampling calls
// from 32 concurrent workers. Shed calls are retried within the caller's
// budget, so the gated metric is goodput — seeds served per second after
// shedding and retries — not raw offered load. overload_shed_share is
// informational: it reports how hard the gate had to push back, which
// moves with scheduler timing, while goodput should stay stable.
func perfOverload(cfg Config, out map[string]float64) {
	const (
		overEdges  = 50_000
		seedBatch  = 256
		fanout     = 10
		workers    = 32
		totalCalls = 6000
		budget     = 50 * time.Millisecond
	)
	store := storage.NewDynamicStore(storage.Options{
		Tree: core.Options{Compress: true}, Workers: cfg.Workers})
	spec := WeChatScaled(overEdges)
	gen := dataset.NewGenerator(spec, dataset.BuildMix, cfg.Seed)
	remaining := overEdges
	for remaining > 0 {
		b := cfg.BatchSize
		if b > remaining {
			b = remaining
		}
		store.ApplyBatch(gen.Next(b))
		remaining -= b
	}
	srvM := &cluster.Metrics{}
	svc := cluster.NewService(store, kvstore.New())
	svc.SetMetrics(srvM)
	srv := cluster.NewServer(svc)
	srv.SetAdmission(cluster.AdmissionConfig{
		MaxConcurrent: 1, MaxQueue: 2, MaxQueueWait: 2 * time.Millisecond})
	dialer := cluster.Dialer(func() (net.Conn, error) {
		cc, sc := net.Pipe()
		go srv.ServeConn(sc)
		return cc, nil
	})
	opts := cluster.DefaultOptions()
	opts.MaxRetries = 2
	opts.RetryBaseDelay = time.Millisecond
	opts.RetryMaxDelay = 10 * time.Millisecond
	opts.Seed = cfg.Seed
	client := cluster.NewClientOptions(nil, []cluster.Dialer{dialer}, opts)
	defer client.Close()

	probe := dataset.NewGenerator(spec, dataset.BuildMix, cfg.Seed)
	seeds := make([]graph.VertexID, seedBatch)
	events := probe.Next(seedBatch)
	for i := range seeds {
		seeds[i] = events[i].Edge.Src
	}

	var next, good atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				r := next.Add(1)
				if r > totalCalls {
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), budget)
				_, err := client.SampleNeighborsCtx(ctx, seeds, 0, fanout, cfg.Seed+r)
				cancel()
				if err == nil {
					good.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	out["overload_goodput_per_sec"] = rate(int(good.Load())*seedBatch, elapsed)
	out["overload_shed_share"] = float64(srvM.RequestsShed.Sum()) / float64(totalCalls)
}

// perfServe measures the online inference tier at a pinned size: embedding
// throughput through the bounded worker pool (serve_embed_per_sec, gated),
// end-to-end k-NN latency — a fresh forward pass plus an HNSW search per
// call (serve_knn_p99_nanos, gated) — and the index's recall@10 against a
// brute-force oracle over the indexed vectors (serve_index_recall_at_10,
// informational: it moves with the HNSW seed rather than with code speed).
func perfServe(cfg Config, out map[string]float64) {
	const (
		n          = 2000
		classes    = 4
		dim        = 16
		f1, f2     = 8, 5
		embedBatch = 64
		knnWarm    = 100
		knnCalls   = 2000
		recallQ    = 100
		k          = 10
	)
	store := storage.NewDynamicStore(storage.Options{
		Tree: core.Options{Compress: true}, Workers: cfg.Workers})
	attrs := kvstore.New()
	dataset.AssignFeatures(attrs, 0, n, dim, classes, 2.0, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	byClass := make([][]graph.VertexID, classes)
	ids := make([]graph.VertexID, n)
	for i := 0; i < n; i++ {
		id := graph.MakeVertexID(0, uint64(i))
		ids[i] = id
		l, _ := attrs.Label(id)
		byClass[l] = append(byClass[l], id)
	}
	for _, id := range ids {
		l, _ := attrs.Label(id)
		peers := byClass[l]
		for j := 0; j < 8; j++ {
			store.AddEdge(graph.Edge{Src: id, Dst: peers[rng.Intn(len(peers))], Weight: 1})
		}
	}
	gv := view.NewLocal(store, attrs, sampler.Options{Parallelism: cfg.Workers, Seed: cfg.Seed})
	model := gnn.NewModel(dim, 32, classes, rng)
	tr := gnn.NewTrainer(model, gv, 0, f1, f2, 0.02)
	if _, err := tr.TrainEpoch(0, ids, 64, rng); err != nil {
		panic(fmt.Sprintf("bench: perfServe training: %v", err))
	}

	m := &serve.Metrics{}
	eng, err := serve.New(serve.Config{
		View:  gv,
		State: checkpoint.Capture(checkpoint.Manifest{Seed: cfg.Seed}, model.Params(), nil),
		Rel:   0, F1: f1, F2: f2,
		Workers: cfg.Workers, Timeout: time.Minute,
		IndexSeed: cfg.Seed, Metrics: m,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: perfServe engine: %v", err))
	}
	ctx := context.Background()
	if _, err := eng.Warm(ctx, 256); err != nil {
		panic(fmt.Sprintf("bench: perfServe warm: %v", err))
	}

	start := time.Now()
	for lo := 0; lo < n; lo += embedBatch {
		hi := lo + embedBatch
		if hi > n {
			hi = n
		}
		if _, err := eng.Embed(ctx, ids[lo:hi]); err != nil {
			panic(fmt.Sprintf("bench: perfServe embed: %v", err))
		}
	}
	out["serve_embed_per_sec"] = rate(n, time.Since(start))

	// p99 from the exact sorted durations (not the log2-bucketed histogram,
	// whose power-of-two edges would quantize the gate), after a warmup
	// round so cold caches don't land in the tail.
	durs := make([]time.Duration, 0, knnCalls)
	for i := 0; i < knnWarm+knnCalls; i++ {
		t0 := time.Now()
		if _, _, err := eng.KNN(ctx, ids[(i*13)%n], k); err != nil {
			panic(fmt.Sprintf("bench: perfServe knn: %v", err))
		}
		if i >= knnWarm {
			durs = append(durs, time.Since(t0))
		}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	out["serve_knn_p99_nanos"] = float64(durs[len(durs)*99/100])

	// Recall@10 against a brute-force oracle over the indexed vectors. Ties
	// are counted by distance, not identity: a returned hit at (or within
	// epsilon of) the oracle's k-th distance is correct even if the oracle
	// broke the tie the other way.
	type pt struct {
		id  uint64
		vec []float32
	}
	pts := make([]pt, 0, n)
	eng.Index().ForEach(func(id uint64, vec []float32) bool {
		pts = append(pts, pt{id, append([]float32(nil), vec...)})
		return true
	})
	sqDist := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			s += d * d
		}
		return s
	}
	hits, total := 0, 0
	dists := make([]float64, 0, len(pts))
	for qi := 0; qi < recallQ; qi++ {
		q := pts[(qi*31)%len(pts)]
		dists = dists[:0]
		for _, p := range pts {
			if p.id != q.id {
				dists = append(dists, sqDist(q.vec, p.vec))
			}
		}
		sort.Float64s(dists)
		cutoff := dists[k-1] + 1e-9
		got, err := eng.Index().Search(q.vec, k+1)
		if err != nil {
			panic(fmt.Sprintf("bench: perfServe recall search: %v", err))
		}
		found := 0
		for _, h := range got {
			if h.ID == q.id {
				continue
			}
			if float64(h.Dist) <= cutoff {
				found++
			}
			if found == k {
				break
			}
		}
		hits += found
		total += k
	}
	out["serve_index_recall_at_10"] = float64(hits) / float64(total)
}

// perfSamtree measures single-edge insert/delete throughput, PALM batch
// throughput, and the FTS sampling latency distribution on a store carrying
// cfg.TargetEdges edges.
func perfSamtree(cfg Config, out map[string]float64) {
	m := &storage.Metrics{}
	store := storage.NewDynamicStore(storage.Options{
		Tree: core.Options{Compress: true}, Workers: cfg.Workers, Metrics: m})
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := int(cfg.TargetEdges)
	// Power-of-two source space keeps trees a few hundred entries deep at
	// the default scale — representative of real per-vertex degrees.
	srcSpace := n / 256
	if srcSpace < 16 {
		srcSpace = 16
	}
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:    graph.MakeVertexID(0, uint64(rng.Intn(srcSpace))),
			Dst:    graph.MakeVertexID(0, uint64(rng.Intn(n))),
			Weight: 1 + rng.Float64(),
		}
	}

	start := time.Now()
	for _, e := range edges {
		store.AddEdge(e)
	}
	out["samtree_insert_per_sec"] = rate(n, time.Since(start))

	// FTS sampling: k draws per call across the populated sources. The
	// latency distribution comes from the store's own histogram, so the
	// quantiles cover exactly the measured descents.
	const sampleCalls = 20_000
	const fanout = 10
	buf := make([]graph.VertexID, 0, fanout)
	start = time.Now()
	for i := 0; i < sampleCalls; i++ {
		src := graph.MakeVertexID(0, uint64(rng.Intn(srcSpace)))
		buf = store.SampleNeighbors(src, 0, fanout, rng, buf[:0])
	}
	out["fts_sample_per_sec"] = rate(sampleCalls, time.Since(start))
	s := m.SampleLatency.Snapshot()
	out["fts_sample_p50_ns"] = float64(s.P50())
	out["fts_sample_p95_ns"] = float64(s.P95())
	out["fts_sample_p99_ns"] = float64(s.P99())

	// PALM batch path at the configured batch size, on a fresh store so
	// inserts dominate (matching the build workload).
	batchStore := storage.NewDynamicStore(storage.Options{
		Tree: core.Options{Compress: true}, Workers: cfg.Workers})
	spec := WeChatScaled(cfg.TargetEdges)
	batches := PrepareBatches(spec, dataset.BuildMix, n/cfg.BatchSize+1, cfg.BatchSize, cfg.Seed)
	events := 0
	start = time.Now()
	for _, b := range batches {
		batchStore.ApplyBatch(b)
		events += len(b)
	}
	out["samtree_batch_events_per_sec"] = rate(events, time.Since(start))

	// Deletes against the populated store, visiting the inserted edges.
	start = time.Now()
	for _, e := range edges {
		store.DeleteEdge(e.Src, e.Dst, e.Type)
	}
	out["samtree_delete_per_sec"] = rate(n, time.Since(start))
}

// perfEpoch measures pipelined training-epoch throughput on the RunGNN
// workload shape, reporting batches/s plus the pipeline's per-stage
// breakdown (build vs consumer stall).
func perfEpoch(cfg Config, out map[string]float64) {
	const (
		n       = 2000
		classes = 4
		dim     = 16
		epochs  = 3
	)
	store := storage.NewDynamicStore(storage.Options{
		Tree: core.Options{Compress: true}, Workers: cfg.Workers})
	attrs := kvstore.New()
	dataset.AssignFeatures(attrs, 0, n, dim, classes, 2.0, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	byClass := make([][]graph.VertexID, classes)
	ids := make([]graph.VertexID, n)
	for i := 0; i < n; i++ {
		id := graph.MakeVertexID(0, uint64(i))
		ids[i] = id
		l, _ := attrs.Label(id)
		byClass[l] = append(byClass[l], id)
	}
	for _, id := range ids {
		l, _ := attrs.Label(id)
		peers := byClass[l]
		for j := 0; j < 8; j++ {
			store.AddEdge(graph.Edge{Src: id, Dst: peers[rng.Intn(len(peers))], Weight: 1})
		}
	}

	model := gnn.NewModel(dim, 32, classes, rng)
	gv := view.NewLocal(store, attrs, sampler.Options{Parallelism: cfg.Workers, Seed: cfg.Seed})
	tr := gnn.NewTrainer(model, gv, 0, 8, 5, 0.02)
	pm := &pipeline.Metrics{}
	pcfg := pipeline.Config{Depth: 4, Workers: 2, Metrics: pm}

	batchesRun := 0
	start := time.Now()
	for e := 0; e < epochs; e++ {
		res, err := pipeline.TrainEpoch(tr, tr.SampleBatch, e, ids, 64, rng, pcfg)
		if err != nil {
			panic(fmt.Sprintf("bench: perf epoch %d: %v", e, err))
		}
		batchesRun += res.Batches
	}
	wall := time.Since(start)
	out["epoch_batches_per_sec"] = rate(batchesRun, wall)

	ps := pm.Snapshot()
	if ps.BatchesBuilt > 0 {
		out["pipeline_build_mean_ns"] = float64(ps.BuildNanos) / float64(ps.BatchesBuilt)
	}
	// Stall time and hit rate are informational (no gated suffix): stalls
	// collapse to ~0 on fast machines and would make the gate flaky.
	out["pipeline_stall_share"] = float64(ps.StallNanos) / float64(wall)
	out["pipeline_hit_rate"] = ps.HitRate()
}

// rate converts an operation count over a wall duration into ops/s.
func rate(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// sortedKeys returns m's keys in lexical order for deterministic output.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RunPerfTable runs the benchmark and prints the metrics as a table — the
// human-readable form of the same experiment ("perf" in -experiment).
func RunPerfTable(cfg Config) {
	cfg = cfg.WithDefaults()
	header(cfg, "Performance benchmark (machine-readable via -json)")
	res := RunPerf(cfg)
	w := tab(cfg)
	fmt.Fprintln(w, "metric\tvalue")
	for _, k := range sortedKeys(res.Metrics) {
		fmt.Fprintf(w, "%s\t%.4g\n", k, res.Metrics[k])
	}
	w.Flush()
}
