package bench

import (
	"fmt"
	"math/rand"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/gnn"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/sampler"
	"platod2gl/internal/storage"
	"platod2gl/internal/view"
)

// RunGNN demonstrates end-to-end dynamic GNN training (Fig. 1's workload):
// a 2-layer GraphSAGE classifier trained on neighborhoods sampled live from
// the samtree store, while the graph keeps receiving updates between
// epochs — the "dynamic GNN model M^(t) works on dynamic graph G^(t)"
// setting of Sec. II-A.
func RunGNN(cfg Config) {
	cfg = cfg.WithDefaults()
	header(cfg, "End-to-end dynamic GNN training (2-layer GraphSAGE on OGBN-sim)")
	const (
		n       = 2000
		classes = 4
		dim     = 16
	)
	store := storage.NewDynamicStore(storage.Options{
		Tree: core.Options{Compress: true}, Workers: cfg.Workers})
	attrs := kvstore.New()
	dataset.AssignFeatures(attrs, 0, n, dim, classes, 2.0, cfg.Seed)

	// Homophilous topology: each vertex links to 8 same-class peers.
	rng := rand.New(rand.NewSource(cfg.Seed))
	byClass := make([][]graph.VertexID, classes)
	ids := make([]graph.VertexID, n)
	for i := 0; i < n; i++ {
		id := graph.MakeVertexID(0, uint64(i))
		ids[i] = id
		l, _ := attrs.Label(id)
		byClass[l] = append(byClass[l], id)
	}
	for _, id := range ids {
		l, _ := attrs.Label(id)
		peers := byClass[l]
		for j := 0; j < 8; j++ {
			// 25% noise edges keep the task from being linearly separable.
			dst := peers[rng.Intn(len(peers))]
			if rng.Intn(4) == 0 {
				dst = ids[rng.Intn(n)]
			}
			store.AddEdge(graph.Edge{Src: id, Dst: dst, Weight: 1})
		}
	}

	model := gnn.NewModel(dim, 32, classes, rng)
	gv := view.NewLocal(store, attrs, sampler.Options{Parallelism: cfg.Workers, Seed: cfg.Seed})
	tr := gnn.NewTrainer(model, gv, 0, 8, 5, 0.02)
	gat := gnn.NewGATTrainer(gnn.NewGATModel(dim, 32, classes, rng), gv, 0, 6, 0.02)
	train, test := ids[:1600], ids[1600:]
	w := tab(cfg)
	fmt.Fprintln(w, "epoch\tSAGE loss\tSAGE acc\tGAT loss\tGAT acc\tgraph edges")
	for e := 0; e < 6; e++ {
		res, err := tr.TrainEpoch(e, train, 64, rng)
		if err != nil {
			fmt.Fprintf(cfg.Out, "SAGE epoch %d failed: %v\n", e, err)
			return
		}
		gatRes, err := gat.TrainEpoch(e, train, 64, rng)
		if err != nil {
			fmt.Fprintf(cfg.Out, "GAT epoch %d failed: %v\n", e, err)
			return
		}
		// Dynamic updates between epochs: new same-class edges arrive, the
		// trainer's next samples see them immediately.
		for k := 0; k < 200; k++ {
			id := ids[rng.Intn(n)]
			l, _ := attrs.Label(id)
			peers := byClass[l]
			store.AddEdge(graph.Edge{Src: id, Dst: peers[rng.Intn(len(peers))], Weight: 1})
		}
		sageAcc, _ := tr.Accuracy(test)
		gatAcc, _ := gat.Accuracy(test)
		fmt.Fprintf(w, "%d\t%.4f\t%.3f\t%.4f\t%.3f\t%d\n",
			e, res.MeanLoss, sageAcc, gatRes.MeanLoss, gatAcc, store.NumEdges())
	}
	w.Flush()
	fmt.Fprintln(cfg.Out, "expected shape: both losses decrease, accuracies well above the 0.25 random baseline, edges grow between epochs.")
}
