package bench

import (
	"fmt"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/storage"
)

// RunTable5 regenerates Table V: the share of topology-update operations
// landing on leaf vs non-leaf samtree nodes while building the WeChat
// graph, across node capacities. Larger capacities keep more trees
// single-leaf (most sources have low degree under a Zipf distribution), so
// the leaf share grows with capacity — the reason FSTable efficiency is
// what matters.
func RunTable5(cfg Config) {
	cfg = cfg.WithDefaults()
	header(cfg, "Table V — update operations on leaf vs non-leaf nodes (WeChat)")
	spec := WeChatScaled(cfg.TargetEdges)
	w := tab(cfg)
	fmt.Fprintln(w, "capacity\tleaf\tnon-leaf")
	for _, capacity := range []int{64, 128, 256, 512, 1024} {
		counters := &core.Counters{}
		store := storage.NewDynamicStore(storage.Options{
			Tree:    core.Options{Capacity: capacity, Compress: true, Counters: counters},
			Workers: cfg.Workers,
		})
		Load(store, spec, dataset.BuildMix, cfg.TargetEdges, cfg.BatchSize, cfg.Seed)
		leaf := counters.LeafShare()
		fmt.Fprintf(w, "%d\t%.2f%%\t%.2f%%\n", capacity, 100*leaf, 100*(1-leaf))
	}
	w.Flush()
	fmt.Fprintln(cfg.Out, "expected shape: leaf share > 90% everywhere and increasing with capacity (paper: 98.09% at 64 -> 99.98% at 1024).")
}
