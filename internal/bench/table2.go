package bench

import (
	"fmt"
	"math/rand"
	"time"

	"platod2gl/internal/cstable"
	"platod2gl/internal/fenwick"
)

// RunTable2 validates Table II empirically: per-operation latency of the
// ITS CSTable vs the FTS FSTable as the element count grows. ITS update and
// delete are O(n) — their per-op cost grows linearly — while every FSTable
// operation and both samplers stay O(log n).
func RunTable2(cfg Config) {
	cfg = cfg.WithDefaults()
	header(cfg, "Table II — per-op latency, ITS (CSTable) vs FTS (FSTable)")
	w := tab(cfg)
	fmt.Fprintln(w, "n\tITS upd\tFTS upd\tITS del\tFTS del\tITS sample\tFTS sample\tupd speedup")
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range []int{1 << 6, 1 << 8, 1 << 10, 1 << 12, 1 << 14} {
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64() + 0.1
		}
		cs := cstable.New(weights)
		fs := fenwick.New(weights)
		iters := 1 << 22 / n // scale iterations down with n for bounded runtime
		if iters < 1024 {
			iters = 1024
		}

		itsUpd := perOp(iters, func(i int) { cs.Update(i%n, 1.5) })
		ftsUpd := perOp(iters, func(i int) { fs.Update(i%n, 1.5) })
		// Delete+append pairs keep the size constant.
		itsDel := perOp(iters, func(i int) { cs.Delete(i % (n - 1)); cs.Append(1) }) / 2
		ftsDel := perOp(iters, func(i int) { fs.Delete(i % (n - 1)); fs.Append(1) }) / 2
		totalC := cs.Total()
		itsSmp := perOp(iters, func(i int) { cs.Sample(float64(i%997) / 997 * totalC) })
		totalF := fs.Total()
		ftsSmp := perOp(iters, func(i int) { fs.Sample(float64(i%997) / 997 * totalF) })

		speedup := float64(itsUpd) / float64(ftsUpd)
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%s\t%s\t%.1fx\n",
			n, fmtNs(itsUpd), fmtNs(ftsUpd), fmtNs(itsDel), fmtNs(ftsDel),
			fmtNs(itsSmp), fmtNs(ftsSmp), speedup)
	}
	w.Flush()
	fmt.Fprintln(cfg.Out, "expected shape: ITS upd/del grow ~linearly with n; FTS stays ~flat (O(log n)); sampling comparable.")
}

// perOp runs fn iters times and returns the mean per-op duration.
func perOp(iters int, fn func(i int)) time.Duration {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn(i)
	}
	return time.Since(start) / time.Duration(iters)
}

func fmtNs(d time.Duration) string {
	return fmt.Sprintf("%dns", d.Nanoseconds())
}
