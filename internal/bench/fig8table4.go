package bench

import (
	"fmt"
	"time"

	"platod2gl/internal/dataset"
	"platod2gl/internal/storage"
)

// BuildResult records one system's graph-building run on one dataset.
type BuildResult struct {
	System SystemName
	Build  time.Duration
	Memory int64
	Edges  int64
	Store  storage.TopologyStore
}

// BuildAll streams the dataset into every system and reports build time and
// memory — the measurements behind Fig. 8 and Table IV.
func BuildAll(cfg Config, spec *dataset.Spec, keepStores bool) []BuildResult {
	cfg = cfg.WithDefaults()
	out := make([]BuildResult, 0, len(AllSystems))
	for _, sys := range AllSystems {
		store := NewStore(sys, cfg.Workers)
		dur := Load(store, spec, dataset.BuildMix, cfg.TargetEdges, cfg.BatchSize, cfg.Seed)
		r := BuildResult{System: sys, Build: dur, Memory: store.MemoryBytes(), Edges: store.NumEdges()}
		if keepStores {
			r.Store = store
		}
		out = append(out, r)
	}
	return out
}

// RunFig8 regenerates Fig. 8 (graph building time) and Fig. 9's companion
// Table IV (memory after building) in one pass over the three datasets.
func RunFig8Table4(cfg Config) {
	cfg = cfg.WithDefaults()
	header(cfg, fmt.Sprintf("Fig. 8 — graph building time (%d logical edges/dataset, batch %d)",
		cfg.TargetEdges, cfg.BatchSize))
	specs := Datasets(cfg.TargetEdges)
	results := make(map[string][]BuildResult, len(specs))
	w := tab(cfg)
	fmt.Fprintln(w, "dataset\tAliGraph\tPlatoGL\tPlatoD2GL\tw/o CP\tspeedup vs PlatoGL")
	for _, spec := range specs {
		rs := BuildAll(cfg, spec, false)
		results[spec.Name] = rs
		byName := indexResults(rs)
		speed := float64(byName[SysPlatoGL].Build) / float64(byName[SysD2GL].Build)
		fmt.Fprintf(w, "%s\t%.2fs\t%.2fs\t%.2fs\t%.2fs\t%.1fx\n",
			spec.Name,
			byName[SysAliGraph].Build.Seconds(),
			byName[SysPlatoGL].Build.Seconds(),
			byName[SysD2GL].Build.Seconds(),
			byName[SysD2GLNoCP].Build.Seconds(),
			speed)
	}
	w.Flush()
	fmt.Fprintln(cfg.Out, "expected shape: PlatoD2GL fastest (paper: up to 6.3x over AliGraph, up to 2.5x over PlatoGL on WeChat).")

	header(cfg, "Table IV — memory cost after graph building")
	w = tab(cfg)
	fmt.Fprintln(w, "dataset\tAliGraph\tPlatoGL\tPlatoD2GL\tw/o CP\tvs 2nd-best\tvs w/o CP")
	for _, spec := range specs {
		byName := indexResults(results[spec.Name])
		d2gl := byName[SysD2GL].Memory
		// "Second-best" compares against the competing systems, not our own
		// ablation (the paper lists w/o CP separately).
		secondBest := byName[SysPlatoGL].Memory
		if m := byName[SysAliGraph].Memory; m < secondBest {
			secondBest = m
		}
		impSecond := 100 * (1 - float64(d2gl)/float64(secondBest))
		impNoCP := 100 * (1 - float64(d2gl)/float64(byName[SysD2GLNoCP].Memory))
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t↓%.1f%%\t↓%.1f%%\n",
			spec.Name,
			fmtBytes(byName[SysAliGraph].Memory),
			fmtBytes(byName[SysPlatoGL].Memory),
			fmtBytes(d2gl),
			fmtBytes(byName[SysD2GLNoCP].Memory),
			impSecond, impNoCP)
	}
	w.Flush()
	fmt.Fprintln(cfg.Out, "expected shape: PlatoD2GL smallest (paper: up to 79.8% below 2nd-best; CP saves 18-48.6%).")

	// Extrapolate the measured bytes/edge to the paper's production scale
	// (WeChat: 63.9B logical edges, stored bi-directed) for a direct
	// absolute comparison with the paper's 4.2TB -> 1TB claim.
	wc := indexResults(results["WeChat"])
	const paperStoredEdges = 2 * 63.9e9
	if wc[SysD2GL].Edges > 0 && wc[SysPlatoGL].Edges > 0 {
		projD2GL := float64(wc[SysD2GL].Memory) / float64(wc[SysD2GL].Edges) * paperStoredEdges
		projPGL := float64(wc[SysPlatoGL].Memory) / float64(wc[SysPlatoGL].Edges) * paperStoredEdges
		fmt.Fprintf(cfg.Out,
			"projection to paper scale (127.8B stored edges): PlatoGL %.1fTB, PlatoD2GL %.1fTB (paper: 4.2TB -> 1TB).\n",
			projPGL/(1<<40), projD2GL/(1<<40))
	}
}

func indexResults(rs []BuildResult) map[SystemName]BuildResult {
	m := make(map[SystemName]BuildResult, len(rs))
	for _, r := range rs {
		m[r.System] = r
	}
	return m
}
