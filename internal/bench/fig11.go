package bench

import (
	"fmt"
	"time"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/storage"
)

// RunFig11 regenerates the four parameter-sensitivity plots of Fig. 11 on
// the WeChat workload: (a) update time vs batch size, (b) vs samtree node
// capacity, (c) concurrent update time vs thread count, (d) insertion time
// vs α-Split slackness.
func RunFig11(cfg Config) {
	cfg = cfg.WithDefaults()
	spec := WeChatScaled(cfg.TargetEdges)

	// (a) batch size sweep.
	header(cfg, "Fig. 11(a) — PlatoD2GL dynamic insertion time vs batch size (WeChat)")
	{
		st := NewStore(SysD2GL, cfg.Workers)
		Load(st, spec, dataset.BuildMix, cfg.TargetEdges, cfg.BatchSize, cfg.Seed)
		w := tab(cfg)
		fmt.Fprintln(w, "batch\ttime/batch\ttime/edge")
		for _, batch := range []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 17} {
			if int64(batch) > 4*cfg.TargetEdges {
				break
			}
			batches := PrepareBatches(spec, dataset.DynamicMix, 3, batch, cfg.Seed+11)
			var total time.Duration
			for _, events := range batches {
				start := time.Now()
				st.ApplyBatch(events)
				total += time.Since(start)
			}
			per := total / time.Duration(len(batches))
			fmt.Fprintf(w, "2^%d\t%s\t%dns\n", log2(batch), fmtDur(per),
				per.Nanoseconds()/int64(batch*2)) // *2: bi-directed mirror events
		}
		w.Flush()
		fmt.Fprintln(cfg.Out, "expected shape: per-batch time grows with batch size, per-edge time roughly flat (paper: <25ms at 2^17).")
	}

	// (b) node capacity sweep.
	header(cfg, "Fig. 11(b) — insertion time vs samtree node capacity")
	{
		w := tab(cfg)
		fmt.Fprintln(w, "capacity\tbuild time")
		for _, capacity := range []int{1 << 6, 1 << 7, 1 << 8, 1 << 9, 1 << 10} {
			st := storage.NewDynamicStore(storage.Options{
				Tree:    core.Options{Capacity: capacity, Compress: true},
				Workers: cfg.Workers,
			})
			dur := Load(st, spec, dataset.DynamicMix, cfg.TargetEdges, cfg.BatchSize, cfg.Seed)
			fmt.Fprintf(w, "2^%d\t%.3fs\n", log2(capacity), dur.Seconds())
		}
		w.Flush()
		fmt.Fprintln(cfg.Out, "expected shape: a shallow optimum around 2^8 (the paper's default).")
	}

	// (c) thread sweep × batch size.
	header(cfg, "Fig. 11(c) — concurrent update time vs worker threads")
	{
		w := tab(cfg)
		fmt.Fprintln(w, "threads\tbatch 2^12\tbatch 2^13\tbatch 2^14")
		for _, threads := range []int{1, 2, 4, 8, 16, 32} {
			fmt.Fprintf(w, "%d", threads)
			for _, batch := range []int{1 << 12, 1 << 13, 1 << 14} {
				st := storage.NewDynamicStore(storage.Options{
					Tree:    core.Options{Compress: true},
					Workers: threads,
				})
				Load(st, spec, dataset.BuildMix, cfg.TargetEdges/2, cfg.BatchSize, cfg.Seed)
				batches := PrepareBatches(spec, dataset.DynamicMix, 4, batch, cfg.Seed+13)
				var total time.Duration
				for _, events := range batches {
					start := time.Now()
					st.ApplyBatch(events)
					total += time.Since(start)
				}
				fmt.Fprintf(w, "\t%s", fmtDur(total/time.Duration(len(batches))))
			}
			fmt.Fprintln(w)
		}
		w.Flush()
		fmt.Fprintln(cfg.Out, "expected shape: time decreases with threads until core count, consistent at each batch size.")
	}

	// (d) α-Split slackness sweep.
	header(cfg, "Fig. 11(d) — insertion time vs α-Split slackness")
	{
		w := tab(cfg)
		fmt.Fprintln(w, "alpha\tbuild time")
		for _, alpha := range []int{0, 2, 8, 32, 128} {
			st := storage.NewDynamicStore(storage.Options{
				Tree:    core.Options{Alpha: alpha, Compress: true},
				Workers: cfg.Workers,
			})
			dur := Load(st, spec, dataset.BuildMix, cfg.TargetEdges, cfg.BatchSize, cfg.Seed)
			fmt.Fprintf(w, "%d\t%.3fs\n", alpha, dur.Seconds())
		}
		w.Flush()
		fmt.Fprintln(cfg.Out, "expected shape: larger alpha -> slightly less time (softer pivots, fewer partition rounds).")
	}
}
