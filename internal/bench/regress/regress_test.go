package regress

import (
	"os"
	"path/filepath"
	"testing"
)

func baseFile() File {
	return File{
		Rev: "base",
		Metrics: map[string]float64{
			"samtree_insert_per_sec": 1_000_000,
			"fts_sample_p99_ns":      10_000,
			"pipeline_hit_rate":      0.95,
			"pipeline_stall_share":   0, // zero baseline: never gates
		},
	}
}

func find(t *testing.T, deltas []Delta, name string) Delta {
	t.Helper()
	for _, d := range deltas {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("delta %q not found in %v", name, deltas)
	return Delta{}
}

func TestCompareImprovementPasses(t *testing.T) {
	cur := baseFile()
	cur.Metrics = map[string]float64{
		"samtree_insert_per_sec": 1_400_000, // 40% faster
		"fts_sample_p99_ns":      7_000,     // 30% lower latency
		"pipeline_hit_rate":      0.99,
		"pipeline_stall_share":   0.5,
	}
	deltas, ok := Compare(baseFile(), cur, 0.25)
	if !ok {
		t.Fatalf("improvement flagged as regression: %+v", deltas)
	}
	if d := find(t, deltas, "samtree_insert_per_sec"); d.Change >= 0 {
		t.Errorf("throughput improvement should have negative change, got %+v", d)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	cur := baseFile()
	cur.Metrics = map[string]float64{
		"samtree_insert_per_sec": 700_000, // 30% slower: beyond 25%
		"fts_sample_p99_ns":      10_000,
		"pipeline_hit_rate":      0.95,
		"pipeline_stall_share":   0,
	}
	deltas, ok := Compare(baseFile(), cur, 0.25)
	if ok {
		t.Fatal("30% throughput drop passed a 25% gate")
	}
	d := find(t, deltas, "samtree_insert_per_sec")
	if !d.Regressed || d.Change < 0.29 || d.Change > 0.31 {
		t.Errorf("expected ~0.30 regression, got %+v", d)
	}
	// The latency metric stayed flat and must not be blamed.
	if find(t, deltas, "fts_sample_p99_ns").Regressed {
		t.Error("unchanged latency flagged as regressed")
	}
}

func TestCompareLatencyRegressionFails(t *testing.T) {
	cur := baseFile()
	cur.Metrics["fts_sample_p99_ns"] = 15_000 // 50% slower
	if _, ok := Compare(baseFile(), cur, 0.25); ok {
		t.Fatal("50% latency growth passed a 25% gate")
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	cur := baseFile()
	cur.Metrics["samtree_insert_per_sec"] = 800_000 // 20% slower: under 25%
	cur.Metrics["fts_sample_p99_ns"] = 12_000       // 20% higher
	if deltas, ok := Compare(baseFile(), cur, 0.25); !ok {
		t.Fatalf("within-threshold noise failed the gate: %+v", deltas)
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	cur := baseFile()
	delete(cur.Metrics, "fts_sample_p99_ns")
	deltas, ok := Compare(baseFile(), cur, 0.25)
	if ok {
		t.Fatal("missing baseline metric passed the gate")
	}
	d := find(t, deltas, "fts_sample_p99_ns")
	if !d.Missing || !d.Regressed {
		t.Errorf("expected missing+regressed, got %+v", d)
	}
}

func TestCompareInformationalNeverGates(t *testing.T) {
	cur := baseFile()
	cur.Metrics["pipeline_hit_rate"] = 0.1 // collapse, but informational
	if _, ok := Compare(baseFile(), cur, 0.25); !ok {
		t.Fatal("informational metric gated the comparison")
	}
}

func TestDirectionOf(t *testing.T) {
	cases := map[string]Direction{
		"x_per_sec":                HigherBetter,
		"x_p99_ns":                 LowerBetter,
		"serve_knn_p99_nanos":      LowerBetter,
		"x_ms":                     LowerBetter,
		"x_bytes":                  LowerBetter,
		"x_hit_rate":               Informational,
		"serve_index_recall_at_10": Informational,
	}
	for name, want := range cases {
		if got := DirectionOf(name); got != want {
			t.Errorf("DirectionOf(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"rev":"abc","metrics":{"a_per_sec":1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Rev != "abc" || f.Metrics["a_per_sec"] != 1 {
		t.Errorf("round trip mismatch: %+v", f)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file did not error")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	os.WriteFile(empty, []byte(`{"rev":"x"}`), 0o644)
	if _, err := Load(empty); err == nil {
		t.Error("loading a metrics-less file did not error")
	}
}
