// Package regress compares two machine-readable benchmark reports
// (bench.PerfResult JSON) and decides whether the newer one regressed. The
// regression direction is carried by the metric-name suffix so the
// comparator needs no out-of-band schema: *_per_sec is higher-better,
// *_ns / *_nanos / *_ms / *_bytes are lower-better, anything else is informational
// and never gates. CI runs it via cmd/bench-regress against the committed
// bench/baseline.json.
package regress

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// File is one benchmark report on disk — the JSON shape bench.PerfResult
// writes. Only Metrics participates in the comparison; the rest is context
// for the report.
type File struct {
	Rev     string             `json:"rev"`
	Go      string             `json:"go,omitempty"`
	Edges   int64              `json:"edges,omitempty"`
	Seed    int64              `json:"seed,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

// Load reads and decodes one report.
func Load(path string) (File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return File{}, fmt.Errorf("regress: %w", err)
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return File{}, fmt.Errorf("regress: %s: %w", path, err)
	}
	if len(f.Metrics) == 0 {
		return File{}, fmt.Errorf("regress: %s: no metrics", path)
	}
	return f, nil
}

// Direction is a metric's regression polarity.
type Direction int

const (
	// Informational metrics are reported but never gate.
	Informational Direction = iota
	// HigherBetter metrics regress when they drop (throughput).
	HigherBetter
	// LowerBetter metrics regress when they grow (latency, sizes).
	LowerBetter
)

// String names the direction for reports.
func (d Direction) String() string {
	switch d {
	case HigherBetter:
		return "higher-better"
	case LowerBetter:
		return "lower-better"
	default:
		return "informational"
	}
}

// DirectionOf derives a metric's polarity from its name suffix.
func DirectionOf(name string) Direction {
	switch {
	case strings.HasSuffix(name, "_per_sec"):
		return HigherBetter
	case strings.HasSuffix(name, "_ns"), strings.HasSuffix(name, "_nanos"),
		strings.HasSuffix(name, "_ms"), strings.HasSuffix(name, "_bytes"):
		return LowerBetter
	default:
		return Informational
	}
}

// Delta is one metric's comparison outcome.
type Delta struct {
	Name      string
	Direction Direction
	Baseline  float64
	Current   float64
	// Change is the fractional movement in the bad direction: +0.30 means
	// 30% worse, -0.10 means 10% better. 0 for informational metrics, a
	// zero baseline, or a metric missing from the current report.
	Change float64
	// Missing reports a baseline metric absent from the current run — a
	// gate failure in its own right (a silently dropped benchmark would
	// otherwise hide a regression forever).
	Missing bool
	// Regressed reports whether this delta fails the gate.
	Regressed bool
}

// Compare evaluates current against baseline with the given fractional
// threshold (0.25 = fail when >25% worse). It returns every baseline
// metric's delta sorted by name, plus whether the gate passes. Metrics new
// in current (absent from baseline) are ignored: they start gating once the
// baseline is regenerated to include them.
func Compare(baseline, current File, threshold float64) ([]Delta, bool) {
	ok := true
	deltas := make([]Delta, 0, len(baseline.Metrics))
	for name, base := range baseline.Metrics {
		d := Delta{Name: name, Direction: DirectionOf(name), Baseline: base}
		cur, present := current.Metrics[name]
		d.Current = cur
		switch {
		case !present:
			d.Missing = true
			d.Regressed = true
		case d.Direction == Informational:
			// reported, never gated
		case base == 0:
			// No ratio exists against a zero baseline; report without gating
			// rather than failing on 0 -> epsilon noise.
		case d.Direction == HigherBetter:
			d.Change = (base - cur) / base
			d.Regressed = d.Change > threshold
		case d.Direction == LowerBetter:
			d.Change = (cur - base) / base
			d.Regressed = d.Change > threshold
		}
		if d.Regressed {
			ok = false
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, ok
}
