// Package graph defines the heterogeneous dynamic graph model shared by
// every storage backend: typed vertices and edges, weighted directed edges,
// and timestamped update events (Sec. II-A of the PlatoD2GL paper).
//
// A heterogeneous graph carries multiple vertex types (User, Live, Tag, ...)
// and edge types (relations such as User-Live). A dynamic graph is a series
// of graphs G^(t): we represent the series as the initial graph plus a
// stream of Events.
package graph

import "fmt"

// VertexType identifies a vertex class (User, Live, ...). At most 256 types.
type VertexType uint8

// EdgeType identifies a relation (User-Live, Live-Tag, ...). At most 256.
type EdgeType uint8

// VertexID is a packed 64-bit vertex identifier: the vertex type occupies
// the top byte and the per-type local ID the low 56 bits. Packing the type
// high keeps IDs of one type byte-prefix-clustered, which is exactly the
// regularity the CP-IDs compression of Sec. VI-A exploits.
type VertexID uint64

// MaxLocalID is the largest local identifier representable in a VertexID.
const MaxLocalID = (1 << 56) - 1

// MakeVertexID packs a vertex type and a local ID.
func MakeVertexID(t VertexType, local uint64) VertexID {
	if local > MaxLocalID {
		panic(fmt.Sprintf("graph: local id %d exceeds 56 bits", local))
	}
	return VertexID(uint64(t)<<56 | local)
}

// Type returns the vertex type packed into id.
func (id VertexID) Type() VertexType { return VertexType(id >> 56) }

// Local returns the per-type local identifier.
func (id VertexID) Local() uint64 { return uint64(id) & MaxLocalID }

// String renders the ID as "type:local".
func (id VertexID) String() string {
	return fmt.Sprintf("%d:%d", id.Type(), id.Local())
}

// Edge is a weighted directed typed edge.
type Edge struct {
	Src, Dst VertexID
	Type     EdgeType
	Weight   float64
}

// EventKind enumerates dynamic graph update operations.
type EventKind uint8

const (
	// AddEdge inserts an edge, or updates its weight if present.
	AddEdge EventKind = iota
	// DeleteEdge removes an edge.
	DeleteEdge
	// UpdateWeight changes the weight of an existing edge; it is a no-op if
	// the edge is absent.
	UpdateWeight
)

func (k EventKind) String() string {
	switch k {
	case AddEdge:
		return "add"
	case DeleteEdge:
		return "del"
	case UpdateWeight:
		return "upd"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one timestamped topology update.
type Event struct {
	Kind      EventKind
	Edge      Edge
	Timestamp int64
}

// Relation describes one edge type of a heterogeneous schema.
type Relation struct {
	Name     string
	Type     EdgeType
	Src, Dst VertexType
}

// Schema describes the vertex and edge types of a heterogeneous graph.
type Schema struct {
	VertexTypes []string // indexed by VertexType
	Relations   []Relation
}

// RelationByName returns the relation with the given name.
func (s *Schema) RelationByName(name string) (Relation, bool) {
	for _, r := range s.Relations {
		if r.Name == name {
			return r, true
		}
	}
	return Relation{}, false
}

// MetaPath is a sequence of edge types to traverse for multi-hop subgraph
// sampling (Sec. VII-C, "multi-hops meta-paths sampling").
type MetaPath []EdgeType
