package graph

import (
	"testing"
	"testing/quick"
)

func TestVertexIDPacking(t *testing.T) {
	cases := []struct {
		typ   VertexType
		local uint64
	}{
		{0, 0},
		{1, 1},
		{255, MaxLocalID},
		{7, 123456789},
	}
	for _, c := range cases {
		id := MakeVertexID(c.typ, c.local)
		if id.Type() != c.typ || id.Local() != c.local {
			t.Fatalf("MakeVertexID(%d,%d) round-trip = (%d,%d)",
				c.typ, c.local, id.Type(), id.Local())
		}
	}
}

func TestVertexIDOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized local id")
		}
	}()
	MakeVertexID(1, MaxLocalID+1)
}

func TestVertexIDString(t *testing.T) {
	if got := MakeVertexID(3, 42).String(); got != "3:42" {
		t.Fatalf("String = %q, want 3:42", got)
	}
}

func TestQuickPackingRoundTrip(t *testing.T) {
	prop := func(typ uint8, local uint64) bool {
		local &= MaxLocalID
		id := MakeVertexID(VertexType(typ), local)
		return id.Type() == VertexType(typ) && id.Local() == local
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSameTypeSharesPrefixByte(t *testing.T) {
	// IDs of the same type must share their top byte, the property CP-IDs
	// compression relies on.
	a := MakeVertexID(9, 1)
	b := MakeVertexID(9, MaxLocalID)
	if uint64(a)>>56 != uint64(b)>>56 {
		t.Fatal("same-type IDs do not share the top byte")
	}
}

func TestEventKindString(t *testing.T) {
	if AddEdge.String() != "add" || DeleteEdge.String() != "del" || UpdateWeight.String() != "upd" {
		t.Fatal("EventKind strings wrong")
	}
	if EventKind(9).String() != "EventKind(9)" {
		t.Fatalf("unknown kind string: %s", EventKind(9))
	}
}

func TestRelationByName(t *testing.T) {
	s := &Schema{
		VertexTypes: []string{"User", "Live"},
		Relations: []Relation{
			{Name: "User-Live", Type: 0, Src: 0, Dst: 1},
			{Name: "Live-Live", Type: 1, Src: 1, Dst: 1},
		},
	}
	r, ok := s.RelationByName("Live-Live")
	if !ok || r.Type != 1 {
		t.Fatalf("RelationByName = %+v,%v", r, ok)
	}
	if _, ok := s.RelationByName("nope"); ok {
		t.Fatal("found nonexistent relation")
	}
}
