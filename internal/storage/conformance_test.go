package storage_test

import (
	"testing"

	"platod2gl/internal/core"
	"platod2gl/internal/storage"
	"platod2gl/internal/storetest"
)

func TestConformanceCompressed(t *testing.T) {
	storetest.Run(t, func() storage.TopologyStore {
		return storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16, Compress: true}})
	})
}

func TestConformanceUncompressed(t *testing.T) {
	storetest.Run(t, func() storage.TopologyStore {
		return storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 64, Alpha: 4}})
	})
}
