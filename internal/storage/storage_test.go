package storage

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"platod2gl/internal/core"
	"platod2gl/internal/graph"
)

func newStore() *DynamicStore {
	return NewDynamicStore(Options{Tree: core.Options{Capacity: 16, Compress: true}})
}

func TestAddAndQuery(t *testing.T) {
	s := newStore()
	e := graph.Edge{Src: 1, Dst: 2, Type: 0, Weight: 0.5}
	if !s.AddEdge(e) {
		t.Fatal("AddEdge of new edge returned false")
	}
	if s.AddEdge(graph.Edge{Src: 1, Dst: 2, Type: 0, Weight: 0.7}) {
		t.Fatal("AddEdge of existing edge returned true")
	}
	if w, ok := s.EdgeWeight(1, 2, 0); !ok || math.Abs(w-0.7) > 1e-12 {
		t.Fatalf("EdgeWeight = %v,%v", w, ok)
	}
	if s.Degree(1, 0) != 1 || s.NumEdges() != 1 {
		t.Fatalf("degree=%d edges=%d", s.Degree(1, 0), s.NumEdges())
	}
	// Distinct edge types are independent relations.
	if s.Degree(1, 1) != 0 {
		t.Fatal("degree leaked across edge types")
	}
	s.AddEdge(graph.Edge{Src: 1, Dst: 2, Type: 1, Weight: 1})
	if s.Degree(1, 1) != 1 || s.Degree(1, 0) != 1 {
		t.Fatal("edge types not isolated")
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	s := newStore()
	s.AddEdge(graph.Edge{Src: 1, Dst: 2, Weight: 1})
	if !s.UpdateWeight(1, 2, 0, 4) {
		t.Fatal("UpdateWeight failed")
	}
	if w, _ := s.EdgeWeight(1, 2, 0); math.Abs(w-4) > 1e-12 {
		t.Fatalf("weight = %v, want 4", w)
	}
	if s.UpdateWeight(1, 99, 0, 1) {
		t.Fatal("UpdateWeight of absent edge returned true")
	}
	if !s.DeleteEdge(1, 2, 0) {
		t.Fatal("DeleteEdge failed")
	}
	if s.DeleteEdge(1, 2, 0) {
		t.Fatal("double delete returned true")
	}
	if s.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", s.NumEdges())
	}
	if s.DeleteEdge(5, 5, 3) {
		t.Fatal("delete on unknown relation returned true")
	}
}

func TestNeighborsAndSources(t *testing.T) {
	s := newStore()
	for i := uint64(0); i < 50; i++ {
		s.AddEdge(graph.Edge{Src: 7, Dst: graph.VertexID(i), Weight: float64(i) + 1})
	}
	ids, weights := s.Neighbors(7, 0)
	if len(ids) != 50 || len(weights) != 50 {
		t.Fatalf("Neighbors returned %d/%d", len(ids), len(weights))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		if uint64(id) != uint64(i) {
			t.Fatalf("missing neighbor %d", i)
		}
	}
	srcs := s.Sources(0)
	if len(srcs) != 1 || srcs[0] != 7 {
		t.Fatalf("Sources = %v", srcs)
	}
	if ids, _ := s.Neighbors(99, 0); ids != nil {
		t.Fatal("Neighbors of unknown source should be nil")
	}
}

func TestSampleNeighborsDistribution(t *testing.T) {
	s := newStore()
	weights := map[graph.VertexID]float64{10: 1, 20: 2, 30: 3, 40: 4}
	total := 0.0
	for dst, w := range weights {
		s.AddEdge(graph.Edge{Src: 1, Dst: dst, Weight: w})
		total += w
	}
	rng := rand.New(rand.NewSource(10))
	counts := map[graph.VertexID]int{}
	const trials = 100000
	got := s.SampleNeighbors(1, 0, trials, rng, nil)
	if len(got) != trials {
		t.Fatalf("sampled %d, want %d", len(got), trials)
	}
	for _, id := range got {
		counts[id]++
	}
	chi2 := 0.0
	for id, w := range weights {
		expected := float64(trials) * w / total
		d := float64(counts[id]) - expected
		chi2 += d * d / expected
	}
	if chi2 > 16.27 {
		t.Fatalf("chi-square = %v, counts = %v", chi2, counts)
	}
	// Unknown source: no samples.
	if out := s.SampleNeighbors(12345, 0, 5, rng, nil); len(out) != 0 {
		t.Fatalf("sampled from unknown source: %v", out)
	}
}

func TestApplyBatchMatchesSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var events []graph.Event
	for i := 0; i < 30000; i++ {
		kind := graph.AddEdge
		if i > 1000 && rng.Intn(10) == 0 {
			kind = graph.DeleteEdge
		}
		events = append(events, graph.Event{
			Kind: kind,
			Edge: graph.Edge{
				Src:    graph.VertexID(rng.Intn(300)),
				Dst:    graph.VertexID(rng.Intn(2000)),
				Type:   graph.EdgeType(rng.Intn(2)),
				Weight: rng.Float64() + 0.01,
			},
			Timestamp: int64(i),
		})
	}
	batched := NewDynamicStore(Options{Tree: core.Options{Capacity: 16}, Workers: 8})
	serial := NewDynamicStore(Options{Tree: core.Options{Capacity: 16}, Workers: 1})
	evCopy := make([]graph.Event, len(events))
	copy(evCopy, events)
	batched.ApplyBatch(evCopy)
	for _, ev := range events {
		switch ev.Kind {
		case graph.AddEdge:
			serial.AddEdge(ev.Edge)
		case graph.DeleteEdge:
			serial.DeleteEdge(ev.Edge.Src, ev.Edge.Dst, ev.Edge.Type)
		}
	}
	if batched.NumEdges() != serial.NumEdges() {
		t.Fatalf("edge counts diverge: %d vs %d", batched.NumEdges(), serial.NumEdges())
	}
	for et := graph.EdgeType(0); et < 2; et++ {
		srcs := serial.Sources(et)
		for _, src := range srcs {
			bi, bw := batched.Neighbors(src, et)
			si, sw := serial.Neighbors(src, et)
			if len(bi) != len(si) {
				t.Fatalf("src %v et %d: %d vs %d neighbors", src, et, len(bi), len(si))
			}
			bm := map[graph.VertexID]float64{}
			for i, id := range bi {
				bm[id] = bw[i]
			}
			for i, id := range si {
				if math.Abs(bm[id]-sw[i]) > 1e-9 {
					t.Fatalf("src %v dst %v: weight %v vs %v", src, id, bm[id], sw[i])
				}
			}
		}
	}
}

func TestApplyBatchOrderWithinEdge(t *testing.T) {
	// Same edge added then deleted within a batch: final state must reflect
	// timestamp order.
	s := newStore()
	s.ApplyBatch([]graph.Event{
		{Kind: graph.DeleteEdge, Edge: graph.Edge{Src: 1, Dst: 2}, Timestamp: 2},
		{Kind: graph.AddEdge, Edge: graph.Edge{Src: 1, Dst: 2, Weight: 1}, Timestamp: 1},
	})
	if s.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0 (add then delete)", s.NumEdges())
	}
}

func TestConcurrentSingleOps(t *testing.T) {
	s := newStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 3000; i++ {
				src := graph.VertexID(rng.Intn(100))
				dst := graph.VertexID(rng.Intn(1000))
				s.AddEdge(graph.Edge{Src: src, Dst: dst, Weight: 1})
				s.SampleNeighbors(src, 0, 3, rng, nil)
				if rng.Intn(5) == 0 {
					s.DeleteEdge(src, dst, 0)
				}
			}
		}(g)
	}
	wg.Wait()
	// Cross-check edge count against a full recount.
	var n int64
	for _, src := range s.Sources(0) {
		n += int64(s.Degree(src, 0))
	}
	if n != s.NumEdges() {
		t.Fatalf("NumEdges = %d but recount = %d", s.NumEdges(), n)
	}
}

func TestMemoryBytesAndName(t *testing.T) {
	cp := NewDynamicStore(Options{Tree: core.Options{Compress: true}})
	nocp := NewDynamicStore(Options{Tree: core.Options{Compress: false}})
	if cp.Name() != "PlatoD2GL" || nocp.Name() != "PlatoD2GL(w/o CP)" {
		t.Fatalf("names: %q / %q", cp.Name(), nocp.Name())
	}
	for i := uint64(0); i < 20000; i++ {
		e := graph.Edge{Src: graph.VertexID(i % 100), Dst: graph.MakeVertexID(1, i), Weight: 1}
		cp.AddEdge(e)
		nocp.AddEdge(e)
	}
	if cp.MemoryBytes() >= nocp.MemoryBytes() {
		t.Fatalf("compression did not shrink memory: %d vs %d",
			cp.MemoryBytes(), nocp.MemoryBytes())
	}
}

func TestStats(t *testing.T) {
	s := NewDynamicStore(Options{Tree: core.Options{Capacity: 4}})
	for i := uint64(0); i < 100; i++ {
		s.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Weight: 1})
	}
	s.AddEdge(graph.Edge{Src: 2, Dst: 1, Weight: 1})
	st := s.Stats(0)
	if st.Trees != 2 {
		t.Fatalf("Trees = %d, want 2", st.Trees)
	}
	if st.MaxHeight < 3 {
		t.Fatalf("MaxHeight = %d, want >= 3", st.MaxHeight)
	}
	if empty := s.Stats(9); empty.Trees != 0 {
		t.Fatalf("Stats of unknown relation: %+v", empty)
	}
}

func TestRelationStats(t *testing.T) {
	s := NewDynamicStore(Options{Tree: core.Options{Capacity: 4}})
	for i := uint64(0); i < 100; i++ {
		s.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Weight: 1})
	}
	s.AddEdge(graph.Edge{Src: 2, Dst: 1, Weight: 1})
	s.AddEdge(graph.Edge{Src: 3, Dst: 1, Type: 2, Weight: 1})

	st := s.RelationStats(0)
	if st.Sources != 2 || st.Edges != 101 || st.MaxDegree != 100 {
		t.Fatalf("RelationStats(0) = %+v", st)
	}
	if st.MeanDegree != 50.5 || st.MaxHeight < 3 {
		t.Fatalf("RelationStats(0) = %+v", st)
	}
	all := s.AllStats()
	if len(all) != 2 || all[0].Type != 0 || all[1].Type != 2 {
		t.Fatalf("AllStats = %+v", all)
	}
	if empty := s.RelationStats(9); empty.Sources != 0 {
		t.Fatalf("unknown relation stats = %+v", empty)
	}
}
