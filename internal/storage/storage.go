// Package storage implements PlatoD2GL's dynamic graph storage layer
// (Sec. III, Fig. 2): per-relation topology held in samtrees reachable
// through a concurrent cuckoo hashmap, with batch latch-free updates and
// weighted neighbor sampling.
//
// It also defines the TopologyStore interface shared with the baseline
// systems (PlatoGL's block-based key-value store and AliGraph's static
// hash-by-source store) so the benchmark harness can drive all three through
// one API.
package storage

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"platod2gl/internal/core"
	"platod2gl/internal/cuckoo"
	"platod2gl/internal/graph"
	"platod2gl/internal/palm"
)

// TopologyStore is the storage-engine contract: dynamic topology updates
// plus weighted neighbor access, per heterogeneous relation.
type TopologyStore interface {
	// Name identifies the engine in benchmark output.
	Name() string
	// AddEdge inserts e, or updates its weight if present. Reports whether
	// the edge was new.
	AddEdge(e graph.Edge) bool
	// DeleteEdge removes the edge; reports whether it existed.
	DeleteEdge(src, dst graph.VertexID, et graph.EdgeType) bool
	// UpdateWeight changes an existing edge's weight; reports whether the
	// edge existed.
	UpdateWeight(src, dst graph.VertexID, et graph.EdgeType, w float64) bool
	// EdgeWeight returns the weight of the edge, if present.
	EdgeWeight(src, dst graph.VertexID, et graph.EdgeType) (float64, bool)
	// Degree returns the out-degree of src under relation et.
	Degree(src graph.VertexID, et graph.EdgeType) int
	// SampleNeighbors draws k weighted samples (with replacement) of src's
	// out-neighbors under et, appending to dst. Returns dst unchanged if
	// src has no such neighbors.
	SampleNeighbors(src graph.VertexID, et graph.EdgeType, k int, rng *rand.Rand, dst []graph.VertexID) []graph.VertexID
	// SampleNeighborsUniform draws k unweighted samples (each neighbor with
	// probability 1/degree), appending to dst.
	SampleNeighborsUniform(src graph.VertexID, et graph.EdgeType, k int, rng *rand.Rand, dst []graph.VertexID) []graph.VertexID
	// Neighbors returns all out-neighbors and weights of src under et.
	Neighbors(src graph.VertexID, et graph.EdgeType) ([]graph.VertexID, []float64)
	// ApplyBatch applies a batch of update events (the dynamic-update entry
	// point; events may be reordered).
	ApplyBatch(events []graph.Event)
	// Sources returns all source vertices that have out-edges under et.
	Sources(et graph.EdgeType) []graph.VertexID
	// NumEdges returns the current edge count across all relations.
	NumEdges() int64
	// MemoryBytes returns the structural memory footprint.
	MemoryBytes() int64
}

// Options configure a DynamicStore.
type Options struct {
	// Tree configures the samtrees (capacity, α, compression, counters).
	Tree core.Options
	// Workers bounds batch-update parallelism; 0 means auto.
	Workers int
	// Metrics, if set, receives per-operation counters and latency
	// histograms (insert/delete/sample/batch). nil disables with only a
	// branch per operation.
	Metrics *Metrics
}

// treeEntry pairs a samtree with its writer lock. Batch updates bypass the
// lock's contention entirely (one worker per tree); the lock serializes
// stray single-edge updates against concurrent readers.
type treeEntry struct {
	mu   sync.RWMutex
	tree *core.Tree
}

// relation is the per-edge-type topology: source vertex → samtree.
type relation struct {
	trees *cuckoo.Map[*treeEntry]
}

// DynamicStore is the PlatoD2GL topology store.
type DynamicStore struct {
	opt      Options
	relsMu   sync.RWMutex
	rels     map[graph.EdgeType]*relation
	numEdges atomic.Int64
}

var _ TopologyStore = (*DynamicStore)(nil)

// NewDynamicStore returns an empty store.
func NewDynamicStore(opt Options) *DynamicStore {
	return &DynamicStore{opt: opt, rels: make(map[graph.EdgeType]*relation)}
}

// Reset drops every relation and zeroes the edge count, returning the store
// to its freshly constructed state. Repair paths use it before rebuilding
// from a healthy peer: Load and replay merge rather than replace, so stale
// local edges the peer deleted must be discarded first. Callers must
// quiesce writers (e.g. via the cluster service's pause) — concurrent
// updates during Reset are lost or land in the fresh state unpredictably.
func (s *DynamicStore) Reset() {
	s.relsMu.Lock()
	s.rels = make(map[graph.EdgeType]*relation)
	s.relsMu.Unlock()
	s.numEdges.Store(0)
}

// Name implements TopologyStore.
func (s *DynamicStore) Name() string {
	if s.opt.Tree.Compress {
		return "PlatoD2GL"
	}
	return "PlatoD2GL(w/o CP)"
}

// Counters returns the shared samtree operation counters, if configured.
func (s *DynamicStore) Counters() *core.Counters { return s.opt.Tree.Counters }

func (s *DynamicStore) rel(et graph.EdgeType, create bool) *relation {
	s.relsMu.RLock()
	r := s.rels[et]
	s.relsMu.RUnlock()
	if r != nil || !create {
		return r
	}
	s.relsMu.Lock()
	defer s.relsMu.Unlock()
	if r = s.rels[et]; r == nil {
		r = &relation{trees: cuckoo.New[*treeEntry]()}
		s.rels[et] = r
	}
	return r
}

func (s *DynamicStore) entry(src graph.VertexID, et graph.EdgeType, create bool) *treeEntry {
	r := s.rel(et, create)
	if r == nil {
		return nil
	}
	if !create {
		e, _ := r.trees.Get(uint64(src))
		return e
	}
	e, _ := r.trees.GetOrCreate(uint64(src), func() *treeEntry {
		return &treeEntry{tree: core.NewTree(s.opt.Tree)}
	})
	return e
}

// AddEdge implements TopologyStore.
func (s *DynamicStore) AddEdge(e graph.Edge) bool {
	start := s.opt.Metrics.startTimer()
	ent := s.entry(e.Src, e.Type, true)
	ent.mu.Lock()
	isNew := ent.tree.Insert(uint64(e.Dst), e.Weight)
	ent.mu.Unlock()
	if isNew {
		s.numEdges.Add(1)
	}
	s.opt.Metrics.observeInsert(start)
	return isNew
}

// DeleteEdge implements TopologyStore.
func (s *DynamicStore) DeleteEdge(src, dst graph.VertexID, et graph.EdgeType) bool {
	start := s.opt.Metrics.startTimer()
	ent := s.entry(src, et, false)
	if ent == nil {
		return false
	}
	ent.mu.Lock()
	ok := ent.tree.Delete(uint64(dst))
	ent.mu.Unlock()
	if ok {
		s.numEdges.Add(-1)
	}
	s.opt.Metrics.observeDelete(start)
	return ok
}

// UpdateWeight implements TopologyStore.
func (s *DynamicStore) UpdateWeight(src, dst graph.VertexID, et graph.EdgeType, w float64) bool {
	ent := s.entry(src, et, false)
	if ent == nil {
		return false
	}
	ent.mu.Lock()
	ok := ent.tree.UpdateWeight(uint64(dst), w)
	ent.mu.Unlock()
	return ok
}

// EdgeWeight implements TopologyStore.
func (s *DynamicStore) EdgeWeight(src, dst graph.VertexID, et graph.EdgeType) (float64, bool) {
	ent := s.entry(src, et, false)
	if ent == nil {
		return 0, false
	}
	ent.mu.RLock()
	w, ok := ent.tree.Weight(uint64(dst))
	ent.mu.RUnlock()
	return w, ok
}

// Degree implements TopologyStore.
func (s *DynamicStore) Degree(src graph.VertexID, et graph.EdgeType) int {
	ent := s.entry(src, et, false)
	if ent == nil {
		return 0
	}
	ent.mu.RLock()
	n := ent.tree.Len()
	ent.mu.RUnlock()
	return n
}

// SampleNeighbors implements TopologyStore: the combined ITS-over-internal /
// FTS-at-leaf descent of Sec. V-C, k times with replacement.
func (s *DynamicStore) SampleNeighbors(src graph.VertexID, et graph.EdgeType, k int, rng *rand.Rand, dst []graph.VertexID) []graph.VertexID {
	start := s.opt.Metrics.startTimer()
	ent := s.entry(src, et, false)
	if ent == nil {
		return dst
	}
	ent.mu.RLock()
	for i := 0; i < k; i++ {
		if v, ok := ent.tree.SampleOne(rng); ok {
			dst = append(dst, graph.VertexID(v))
		}
	}
	ent.mu.RUnlock()
	s.opt.Metrics.observeSample(start)
	return dst
}

// SampleNeighborsUniform implements TopologyStore via the samtree's
// count-guided uniform descent.
func (s *DynamicStore) SampleNeighborsUniform(src graph.VertexID, et graph.EdgeType, k int, rng *rand.Rand, dst []graph.VertexID) []graph.VertexID {
	start := s.opt.Metrics.startTimer()
	ent := s.entry(src, et, false)
	if ent == nil {
		return dst
	}
	ent.mu.RLock()
	for i := 0; i < k; i++ {
		if v, ok := ent.tree.SampleOneUniform(rng); ok {
			dst = append(dst, graph.VertexID(v))
		}
	}
	ent.mu.RUnlock()
	s.opt.Metrics.observeSample(start)
	return dst
}

// Neighbors implements TopologyStore.
func (s *DynamicStore) Neighbors(src graph.VertexID, et graph.EdgeType) ([]graph.VertexID, []float64) {
	ent := s.entry(src, et, false)
	if ent == nil {
		return nil, nil
	}
	ent.mu.RLock()
	ids, weights := ent.tree.Neighbors()
	ent.mu.RUnlock()
	out := make([]graph.VertexID, len(ids))
	for i, id := range ids {
		out[i] = graph.VertexID(id)
	}
	return out, weights
}

// NeighborsInRange returns src's out-neighbors with lo <= id <= hi (an
// ordered samtree range scan; only intersecting leaves are visited).
func (s *DynamicStore) NeighborsInRange(src graph.VertexID, et graph.EdgeType, lo, hi graph.VertexID) ([]graph.VertexID, []float64) {
	ent := s.entry(src, et, false)
	if ent == nil {
		return nil, nil
	}
	ent.mu.RLock()
	rawIDs, weights := ent.tree.RangeNeighbors(uint64(lo), uint64(hi))
	ent.mu.RUnlock()
	ids := make([]graph.VertexID, len(rawIDs))
	for i, id := range rawIDs {
		ids[i] = graph.VertexID(id)
	}
	return ids, weights
}

// ApplyBatch implements TopologyStore using the PALM-style batch mechanism:
// events are sorted and grouped per samtree, groups are sharded across
// workers, and each tree is mutated latch-free by its single owner.
func (s *DynamicStore) ApplyBatch(events []graph.Event) {
	start := s.opt.Metrics.startTimer()
	workers := s.opt.Workers
	if workers <= 0 {
		workers = palm.DefaultWorkers(len(events))
	}
	var added, removed atomic.Int64
	palm.Run(events, workers, func(g palm.Group) {
		// Translate the group into tree ops and apply them with the
		// intra-tree batch path (sorted IDs reuse root-to-leaf searches).
		ops := make([]core.Op, len(g.Events))
		for i, ev := range g.Events {
			op := core.Op{ID: uint64(ev.Edge.Dst), Weight: ev.Edge.Weight}
			switch ev.Kind {
			case graph.DeleteEdge:
				op.Kind = core.OpDelete
			case graph.UpdateWeight:
				op.Kind = core.OpUpdate
			default:
				op.Kind = core.OpInsert
			}
			ops[i] = op
		}
		ent := s.entry(g.Src, g.Type, true)
		ent.mu.Lock()
		a, r := ent.tree.ApplyBatch(ops)
		ent.mu.Unlock()
		added.Add(int64(a))
		removed.Add(int64(r))
	})
	s.numEdges.Add(added.Load() - removed.Load())
	s.opt.Metrics.observeBatch(start, len(events))
}

// Sources implements TopologyStore.
func (s *DynamicStore) Sources(et graph.EdgeType) []graph.VertexID {
	r := s.rel(et, false)
	if r == nil {
		return nil
	}
	keys := r.trees.Keys()
	out := make([]graph.VertexID, len(keys))
	for i, k := range keys {
		out[i] = graph.VertexID(k)
	}
	return out
}

// NumEdges implements TopologyStore.
func (s *DynamicStore) NumEdges() int64 { return s.numEdges.Load() }

// MemoryBytes implements TopologyStore: the cuckoo index plus every samtree.
func (s *DynamicStore) MemoryBytes() int64 {
	var total int64
	s.relsMu.RLock()
	rels := make([]*relation, 0, len(s.rels))
	for _, r := range s.rels {
		rels = append(rels, r)
	}
	s.relsMu.RUnlock()
	for _, r := range rels {
		total += r.trees.MemoryBytes(8) // 8-byte tree pointer per slot
		r.trees.Range(func(_ uint64, ent *treeEntry) bool {
			ent.mu.RLock()
			total += ent.tree.MemoryBytes() + 32 // entry struct + lock
			ent.mu.RUnlock()
			return true
		})
	}
	return total
}

// TreeStats summarizes the samtree population (used by the benchmark
// harness's Table V instrumentation).
type TreeStats struct {
	Trees     int
	MaxHeight int
	SumHeight int64
}

// RelationStats summarizes one relation's topology.
type RelationStats struct {
	Type       graph.EdgeType
	Sources    int
	Edges      int64
	MaxDegree  int
	MeanDegree float64
	MaxHeight  int
}

// RelationStats walks one relation and summarizes its population.
func (s *DynamicStore) RelationStats(et graph.EdgeType) RelationStats {
	st := RelationStats{Type: et}
	r := s.rel(et, false)
	if r == nil {
		return st
	}
	r.trees.Range(func(_ uint64, ent *treeEntry) bool {
		ent.mu.RLock()
		deg := ent.tree.Len()
		h := ent.tree.Height()
		ent.mu.RUnlock()
		if deg == 0 {
			return true
		}
		st.Sources++
		st.Edges += int64(deg)
		if deg > st.MaxDegree {
			st.MaxDegree = deg
		}
		if h > st.MaxHeight {
			st.MaxHeight = h
		}
		return true
	})
	if st.Sources > 0 {
		st.MeanDegree = float64(st.Edges) / float64(st.Sources)
	}
	return st
}

// AllStats summarizes every relation present in the store, ordered by edge
// type.
func (s *DynamicStore) AllStats() []RelationStats {
	s.relsMu.RLock()
	types := make([]graph.EdgeType, 0, len(s.rels))
	for et := range s.rels {
		types = append(types, et)
	}
	s.relsMu.RUnlock()
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	out := make([]RelationStats, 0, len(types))
	for _, et := range types {
		out = append(out, s.RelationStats(et))
	}
	return out
}

// Stats walks all samtrees of a relation and reports population statistics.
func (s *DynamicStore) Stats(et graph.EdgeType) TreeStats {
	var st TreeStats
	r := s.rel(et, false)
	if r == nil {
		return st
	}
	r.trees.Range(func(_ uint64, ent *treeEntry) bool {
		ent.mu.RLock()
		h := ent.tree.Height()
		ent.mu.RUnlock()
		st.Trees++
		st.SumHeight += int64(h)
		if h > st.MaxHeight {
			st.MaxHeight = h
		}
		return true
	})
	return st
}
