package storage

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/graph"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := NewDynamicStore(Options{Tree: core.Options{Capacity: 16, Compress: true}})
	gen := dataset.NewGenerator(dataset.WeChatSim().Scale(5e-7), dataset.DynamicMix, 3)
	for i := 0; i < 10; i++ {
		src.ApplyBatch(gen.Next(2000))
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Load into a differently-configured store: format is engine-neutral.
	dst := NewDynamicStore(Options{Tree: core.Options{Capacity: 64, Alpha: 4}})
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if src.NumEdges() != dst.NumEdges() {
		t.Fatalf("edges: %d vs %d", src.NumEdges(), dst.NumEdges())
	}
	for _, et := range []graph.EdgeType{0, 1, 2, 3, 128, 129, 130, 131} {
		for _, v := range src.Sources(et) {
			si, sw := src.Neighbors(v, et)
			dm := map[graph.VertexID]float64{}
			di, dw := dst.Neighbors(v, et)
			for i, id := range di {
				dm[id] = dw[i]
			}
			if len(si) != len(di) {
				t.Fatalf("src %v et %d: %d vs %d neighbors", v, et, len(si), len(di))
			}
			for i, id := range si {
				got, ok := dm[id]
				if !ok || math.Abs(got-sw[i]) > 1e-9 {
					t.Fatalf("src %v dst %v: %v,%v want %v", v, id, got, ok, sw[i])
				}
			}
		}
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := NewDynamicStore(Options{}).Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewDynamicStore(Options{})
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.NumEdges() != 0 {
		t.Fatalf("edges = %d", dst.NumEdges())
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	dst := NewDynamicStore(Options{})
	if err := dst.Load(strings.NewReader("not a snapshot at all")); err == nil {
		t.Fatal("expected error on garbage input")
	}
}

func TestSnapshotRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft a gob stream with a bad header by saving then corrupting
	// is fragile; instead encode a compatible header with wrong magic.
	s := NewDynamicStore(Options{})
	s.AddEdge(graph.Edge{Src: 1, Dst: 2, Weight: 1})
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a byte inside the magic string.
	idx := bytes.Index(raw, []byte("platod2gl-snapshot"))
	if idx < 0 {
		t.Skip("magic not found in serialized form")
	}
	raw[idx] = 'X'
	if err := NewDynamicStore(Options{}).Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected magic mismatch error")
	}
}

func TestSnapshotTruncatedStream(t *testing.T) {
	s := NewDynamicStore(Options{})
	for i := uint64(0); i < 500; i++ {
		s.AddEdge(graph.Edge{Src: graph.VertexID(i % 10), Dst: graph.VertexID(i), Weight: 1})
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if err := NewDynamicStore(Options{}).Load(bytes.NewReader(truncated)); err == nil {
		t.Fatal("expected error on truncated snapshot")
	}
}
