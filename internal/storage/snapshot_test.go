package storage

import (
	"bytes"
	"encoding/gob"
	"math"
	"strings"
	"testing"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/graph"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := NewDynamicStore(Options{Tree: core.Options{Capacity: 16, Compress: true}})
	gen := dataset.NewGenerator(dataset.WeChatSim().Scale(5e-7), dataset.DynamicMix, 3)
	for i := 0; i < 10; i++ {
		src.ApplyBatch(gen.Next(2000))
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Load into a differently-configured store: format is engine-neutral.
	dst := NewDynamicStore(Options{Tree: core.Options{Capacity: 64, Alpha: 4}})
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if src.NumEdges() != dst.NumEdges() {
		t.Fatalf("edges: %d vs %d", src.NumEdges(), dst.NumEdges())
	}
	for _, et := range []graph.EdgeType{0, 1, 2, 3, 128, 129, 130, 131} {
		for _, v := range src.Sources(et) {
			si, sw := src.Neighbors(v, et)
			dm := map[graph.VertexID]float64{}
			di, dw := dst.Neighbors(v, et)
			for i, id := range di {
				dm[id] = dw[i]
			}
			if len(si) != len(di) {
				t.Fatalf("src %v et %d: %d vs %d neighbors", v, et, len(si), len(di))
			}
			for i, id := range si {
				got, ok := dm[id]
				if !ok || math.Abs(got-sw[i]) > 1e-9 {
					t.Fatalf("src %v dst %v: %v,%v want %v", v, id, got, ok, sw[i])
				}
			}
		}
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := NewDynamicStore(Options{}).Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewDynamicStore(Options{})
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.NumEdges() != 0 {
		t.Fatalf("edges = %d", dst.NumEdges())
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	dst := NewDynamicStore(Options{})
	if err := dst.Load(strings.NewReader("not a snapshot at all")); err == nil {
		t.Fatal("expected error on garbage input")
	}
}

func TestSnapshotRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft a gob stream with a bad header by saving then corrupting
	// is fragile; instead encode a compatible header with wrong magic.
	s := NewDynamicStore(Options{})
	s.AddEdge(graph.Edge{Src: 1, Dst: 2, Weight: 1})
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a byte inside the magic string.
	idx := bytes.Index(raw, []byte("platod2gl-snapshot"))
	if idx < 0 {
		t.Skip("magic not found in serialized form")
	}
	raw[idx] = 'X'
	if err := NewDynamicStore(Options{}).Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected magic mismatch error")
	}
}

func TestSnapshotTruncatedStream(t *testing.T) {
	s := NewDynamicStore(Options{})
	for i := uint64(0); i < 500; i++ {
		s.AddEdge(graph.Edge{Src: graph.VertexID(i % 10), Dst: graph.VertexID(i), Weight: 1})
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if err := NewDynamicStore(Options{}).Load(bytes.NewReader(truncated)); err == nil {
		t.Fatal("expected error on truncated snapshot")
	}
}

// TestSnapshotBitFlipDetected: any single flipped payload bit in a v2
// snapshot fails the CRC trailer at load and at VerifySnapshot.
func TestSnapshotBitFlipDetected(t *testing.T) {
	s := NewDynamicStore(Options{})
	for i := uint64(0); i < 300; i++ {
		s.AddEdge(graph.Edge{Src: graph.VertexID(i % 7), Dst: graph.VertexID(i + 100), Type: graph.EdgeType(i % 2), Weight: float64(i)})
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("clean snapshot failed verify: %v", err)
	}
	// Flip a bit deep in the record section (past the header, before the
	// trailer) — the kind of corruption gob alone would happily decode.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[len(raw)/2] ^= 0x04
	if err := VerifySnapshot(bytes.NewReader(raw)); err == nil {
		t.Fatal("VerifySnapshot accepted a bit-flipped snapshot")
	}
	if err := NewDynamicStore(Options{}).Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("Load accepted a bit-flipped snapshot")
	}
}

// TestSnapshotV1StillLoads: a version-1 stream (no CRC trailer) loads and
// verifies — upgraded servers must read snapshots written before the
// trailer existed.
func TestSnapshotV1StillLoads(t *testing.T) {
	s := NewDynamicStore(Options{})
	s.AddEdge(graph.Edge{Src: 1, Dst: 2, Weight: 0.5})
	s.AddEdge(graph.Edge{Src: 1, Dst: 3, Weight: 1.5})
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(snapHeader{Magic: snapshotMagic, Version: 1, NumRelations: 1}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(snapRelation{Type: 0, NumSources: 1}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(snapSource{Src: 1, IDs: []uint64{2, 3}, Weights: []float64{0.5, 1.5}}); err != nil {
		t.Fatal(err)
	}
	v1 := append([]byte(nil), buf.Bytes()...)
	if err := VerifySnapshot(bytes.NewReader(v1)); err != nil {
		t.Fatalf("v1 verify: %v", err)
	}
	dst := NewDynamicStore(Options{})
	if err := dst.Load(bytes.NewReader(v1)); err != nil {
		t.Fatalf("v1 load: %v", err)
	}
	if dst.NumEdges() != 2 {
		t.Fatalf("v1 load edges = %d, want 2", dst.NumEdges())
	}
}

// TestDynamicStoreReset: Reset empties the store so a repair can rebuild
// from a peer without merging stale edges.
func TestDynamicStoreReset(t *testing.T) {
	s := NewDynamicStore(Options{})
	for i := uint64(0); i < 50; i++ {
		s.AddEdge(graph.Edge{Src: graph.VertexID(i % 5), Dst: graph.VertexID(i + 10), Weight: 1})
	}
	if s.NumEdges() == 0 {
		t.Fatal("setup produced no edges")
	}
	s.Reset()
	if s.NumEdges() != 0 {
		t.Fatalf("post-Reset edges = %d", s.NumEdges())
	}
	if srcs := s.Sources(0); len(srcs) != 0 {
		t.Fatalf("post-Reset sources = %v", srcs)
	}
	// The store stays usable.
	if !s.AddEdge(graph.Edge{Src: 1, Dst: 2, Weight: 1}) {
		t.Fatal("AddEdge after Reset")
	}
	if s.NumEdges() != 1 {
		t.Fatalf("edges after re-add = %d", s.NumEdges())
	}
}
