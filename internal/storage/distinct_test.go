package storage

import (
	"math/rand"
	"testing"

	"platod2gl/internal/graph"
)

func TestDistinctReturnsUniqueNeighbors(t *testing.T) {
	s := NewDynamicStore(Options{})
	for i := uint64(0); i < 100; i++ {
		s.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Weight: float64(i%7) + 1})
	}
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 5, 25, 60, 99, 100, 150} {
		got := s.SampleNeighborsDistinct(1, 0, k, rng, nil)
		want := k
		if want > 100 {
			want = 100
		}
		if len(got) != want {
			t.Fatalf("k=%d: got %d distinct neighbors, want %d", k, len(got), want)
		}
		seen := map[graph.VertexID]bool{}
		for _, id := range got {
			if seen[id] {
				t.Fatalf("k=%d: duplicate neighbor %v", k, id)
			}
			seen[id] = true
			if uint64(id) >= 100 {
				t.Fatalf("k=%d: foreign neighbor %v", k, id)
			}
		}
	}
}

func TestDistinctWeightBias(t *testing.T) {
	// One heavy neighbor must be selected in nearly every k=2 draw.
	s := NewDynamicStore(Options{})
	s.AddEdge(graph.Edge{Src: 1, Dst: 999, Weight: 1000})
	for i := uint64(0); i < 20; i++ {
		s.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Weight: 1})
	}
	rng := rand.New(rand.NewSource(2))
	hits := 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		got := s.SampleNeighborsDistinct(1, 0, 2, rng, nil)
		for _, id := range got {
			if id == 999 {
				hits++
			}
		}
	}
	if frac := float64(hits) / trials; frac < 0.95 {
		t.Fatalf("heavy neighbor selected in only %.3f of draws", frac)
	}
}

func TestDistinctPathologicalSkewFallsBack(t *testing.T) {
	// Extreme skew defeats rejection sampling (the same heavy neighbor is
	// drawn over and over); the enumeration fallback must still deliver k
	// distinct neighbors.
	s := NewDynamicStore(Options{})
	s.AddEdge(graph.Edge{Src: 1, Dst: 999, Weight: 1e12})
	for i := uint64(0); i < 200; i++ {
		s.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Weight: 1e-6})
	}
	rng := rand.New(rand.NewSource(3))
	got := s.SampleNeighborsDistinct(1, 0, 10, rng, nil)
	if len(got) != 10 {
		t.Fatalf("got %d distinct neighbors under skew, want 10", len(got))
	}
	seen := map[graph.VertexID]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate %v", id)
		}
		seen[id] = true
	}
}

func TestDistinctEmptyAndUnknown(t *testing.T) {
	s := NewDynamicStore(Options{})
	rng := rand.New(rand.NewSource(4))
	if got := s.SampleNeighborsDistinct(9, 0, 5, rng, nil); len(got) != 0 {
		t.Fatalf("unknown source returned %v", got)
	}
	s.AddEdge(graph.Edge{Src: 9, Dst: 1, Weight: 1})
	if got := s.SampleNeighborsDistinct(9, 0, 0, rng, nil); len(got) != 0 {
		t.Fatalf("k=0 returned %v", got)
	}
}
