package storage

import (
	"encoding/gob"
	"fmt"
	"io"

	"platod2gl/internal/graph"
)

// Snapshot persistence: a graph server must survive restarts without
// replaying the full event history, so the store can serialize its topology
// to any io.Writer and rebuild from it. The format is a gob stream of
// per-source adjacency records — deliberately engine-independent, so a
// snapshot taken from one configuration (capacity, α, compression) loads
// into any other.

const (
	snapshotMagic   = "platod2gl-snapshot"
	snapshotVersion = 1
)

type snapHeader struct {
	Magic        string
	Version      int
	NumRelations int
}

type snapRelation struct {
	Type       graph.EdgeType
	NumSources int
}

type snapSource struct {
	Src     graph.VertexID
	IDs     []uint64
	Weights []float64
}

// Save serializes the full topology. Concurrent updates during Save are
// safe but may or may not be included.
func (s *DynamicStore) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	s.relsMu.RLock()
	types := make([]graph.EdgeType, 0, len(s.rels))
	for et := range s.rels {
		types = append(types, et)
	}
	s.relsMu.RUnlock()
	if err := enc.Encode(snapHeader{Magic: snapshotMagic, Version: snapshotVersion, NumRelations: len(types)}); err != nil {
		return fmt.Errorf("storage: encode header: %w", err)
	}
	for _, et := range types {
		r := s.rel(et, false)
		srcs := r.trees.Keys()
		if err := enc.Encode(snapRelation{Type: et, NumSources: len(srcs)}); err != nil {
			return fmt.Errorf("storage: encode relation %d: %w", et, err)
		}
		for _, src := range srcs {
			ent, _ := r.trees.Get(src)
			if ent == nil {
				// Deleted concurrently: emit an empty record to keep counts.
				if err := enc.Encode(snapSource{Src: graph.VertexID(src)}); err != nil {
					return err
				}
				continue
			}
			ent.mu.RLock()
			ids, weights := ent.tree.Neighbors()
			ent.mu.RUnlock()
			if err := enc.Encode(snapSource{Src: graph.VertexID(src), IDs: ids, Weights: weights}); err != nil {
				return fmt.Errorf("storage: encode source %d: %w", src, err)
			}
		}
	}
	return nil
}

// Load rebuilds topology from a snapshot into the store (which should be
// empty; loaded edges merge with any existing ones otherwise).
func (s *DynamicStore) Load(rd io.Reader) error {
	dec := gob.NewDecoder(rd)
	var h snapHeader
	if err := dec.Decode(&h); err != nil {
		return fmt.Errorf("storage: decode header: %w", err)
	}
	if h.Magic != snapshotMagic {
		return fmt.Errorf("storage: not a platod2gl snapshot (magic %q)", h.Magic)
	}
	if h.Version != snapshotVersion {
		return fmt.Errorf("storage: unsupported snapshot version %d", h.Version)
	}
	for rel := 0; rel < h.NumRelations; rel++ {
		var sr snapRelation
		if err := dec.Decode(&sr); err != nil {
			return fmt.Errorf("storage: decode relation %d: %w", rel, err)
		}
		for i := 0; i < sr.NumSources; i++ {
			var rec snapSource
			if err := dec.Decode(&rec); err != nil {
				return fmt.Errorf("storage: decode source %d/%d: %w", i, sr.NumSources, err)
			}
			if len(rec.IDs) != len(rec.Weights) {
				return fmt.Errorf("storage: corrupt record for source %v: %d ids, %d weights",
					rec.Src, len(rec.IDs), len(rec.Weights))
			}
			if len(rec.IDs) == 0 {
				continue
			}
			ent := s.entry(rec.Src, sr.Type, true)
			ent.mu.Lock()
			var added int64
			for j, id := range rec.IDs {
				if ent.tree.Insert(id, rec.Weights[j]) {
					added++
				}
			}
			ent.mu.Unlock()
			s.numEdges.Add(added)
		}
	}
	return nil
}
