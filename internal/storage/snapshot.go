package storage

import (
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"platod2gl/internal/graph"
)

// Snapshot persistence: a graph server must survive restarts without
// replaying the full event history, so the store can serialize its topology
// to any io.Writer and rebuild from it. The format is a gob stream of
// per-source adjacency records — deliberately engine-independent, so a
// snapshot taken from one configuration (capacity, α, compression) loads
// into any other.
//
// Version 2 appends a CRC-32C trailer record covering every stream byte
// before it, so a bit-flipped snapshot — on disk or in flight over the
// replica catch-up RPCs — is rejected at load instead of silently building
// a wrong topology. Version 1 snapshots (no trailer) still load.

const (
	snapshotMagic   = "platod2gl-snapshot"
	snapshotVersion = 2
)

type snapHeader struct {
	Magic        string
	Version      int
	NumRelations int
}

type snapRelation struct {
	Type       graph.EdgeType
	NumSources int
}

type snapSource struct {
	Src     graph.VertexID
	IDs     []uint64
	Weights []float64
}

// snapTrailer closes a v2 stream with the checksum of all preceding bytes.
type snapTrailer struct {
	CRC uint32
}

var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

// crcWriter hashes every byte it forwards.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, snapCRCTable, p[:n])
	return n, err
}

// crcReader hashes every byte consumed. It implements io.ByteReader so
// gob.Decoder reads from it directly (no internal bufio read-ahead), which
// keeps the hash exactly in step with the messages decoded — required for
// excluding the trailer record from its own checksum.
type crcReader struct {
	r   io.Reader
	b   [1]byte
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, snapCRCTable, p[:n])
	return n, err
}

func (cr *crcReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(cr.r, cr.b[:]); err != nil {
		return 0, err
	}
	cr.crc = crc32.Update(cr.crc, snapCRCTable, cr.b[:])
	return cr.b[0], nil
}

// Save serializes the full topology. Concurrent updates during Save are
// safe but may or may not be included.
func (s *DynamicStore) Save(w io.Writer) error {
	cw := &crcWriter{w: w}
	enc := gob.NewEncoder(cw)
	s.relsMu.RLock()
	types := make([]graph.EdgeType, 0, len(s.rels))
	for et := range s.rels {
		types = append(types, et)
	}
	s.relsMu.RUnlock()
	if err := enc.Encode(snapHeader{Magic: snapshotMagic, Version: snapshotVersion, NumRelations: len(types)}); err != nil {
		return fmt.Errorf("storage: encode header: %w", err)
	}
	for _, et := range types {
		r := s.rel(et, false)
		srcs := r.trees.Keys()
		if err := enc.Encode(snapRelation{Type: et, NumSources: len(srcs)}); err != nil {
			return fmt.Errorf("storage: encode relation %d: %w", et, err)
		}
		for _, src := range srcs {
			ent, _ := r.trees.Get(src)
			if ent == nil {
				// Deleted concurrently: emit an empty record to keep counts.
				if err := enc.Encode(snapSource{Src: graph.VertexID(src)}); err != nil {
					return err
				}
				continue
			}
			ent.mu.RLock()
			ids, weights := ent.tree.Neighbors()
			ent.mu.RUnlock()
			if err := enc.Encode(snapSource{Src: graph.VertexID(src), IDs: ids, Weights: weights}); err != nil {
				return fmt.Errorf("storage: encode source %d: %w", src, err)
			}
		}
	}
	// The trailer checksums everything before it (its own bytes excluded).
	if err := enc.Encode(snapTrailer{CRC: cw.crc}); err != nil {
		return fmt.Errorf("storage: encode trailer: %w", err)
	}
	return nil
}

// Load rebuilds topology from a snapshot into the store (which should be
// empty; loaded edges merge with any existing ones otherwise). Version-2
// streams are checksum-verified; a CRC mismatch fails the load, though
// records decoded before the trailer have already been merged — callers that
// must stay clean on failure Reset and retry from another source.
func (s *DynamicStore) Load(rd io.Reader) error {
	return walkSnapshot(rd, func(et graph.EdgeType, rec snapSource) error {
		ent := s.entry(rec.Src, et, true)
		ent.mu.Lock()
		var added int64
		for j, id := range rec.IDs {
			if ent.tree.Insert(id, rec.Weights[j]) {
				added++
			}
		}
		ent.mu.Unlock()
		s.numEdges.Add(added)
		return nil
	})
}

// VerifySnapshot streams through a snapshot checking structure and, on v2,
// the CRC trailer, without building a store. This is what a scrubber runs
// against the on-disk snapshot file: cheap enough for periodic checks, and
// a failure pinpoints corruption before a restart would trip over it.
func VerifySnapshot(rd io.Reader) error {
	return walkSnapshot(rd, func(graph.EdgeType, snapSource) error { return nil })
}

// walkSnapshot decodes a snapshot stream, handing each non-empty source
// record to fn, and verifies the v2 CRC trailer.
func walkSnapshot(rd io.Reader, fn func(et graph.EdgeType, rec snapSource) error) error {
	cr := &crcReader{r: rd}
	dec := gob.NewDecoder(cr)
	var h snapHeader
	if err := dec.Decode(&h); err != nil {
		return fmt.Errorf("storage: decode header: %w", err)
	}
	if h.Magic != snapshotMagic {
		return fmt.Errorf("storage: not a platod2gl snapshot (magic %q)", h.Magic)
	}
	if h.Version != 1 && h.Version != snapshotVersion {
		return fmt.Errorf("storage: unsupported snapshot version %d", h.Version)
	}
	for rel := 0; rel < h.NumRelations; rel++ {
		var sr snapRelation
		if err := dec.Decode(&sr); err != nil {
			return fmt.Errorf("storage: decode relation %d: %w", rel, err)
		}
		for i := 0; i < sr.NumSources; i++ {
			var rec snapSource
			if err := dec.Decode(&rec); err != nil {
				return fmt.Errorf("storage: decode source %d/%d: %w", i, sr.NumSources, err)
			}
			if len(rec.IDs) != len(rec.Weights) {
				return fmt.Errorf("storage: corrupt record for source %v: %d ids, %d weights",
					rec.Src, len(rec.IDs), len(rec.Weights))
			}
			if len(rec.IDs) == 0 {
				continue
			}
			if err := fn(sr.Type, rec); err != nil {
				return err
			}
		}
	}
	if h.Version >= 2 {
		want := cr.crc // everything consumed so far; the trailer excludes itself
		var tr snapTrailer
		if err := dec.Decode(&tr); err != nil {
			return fmt.Errorf("storage: decode trailer: %w", err)
		}
		if tr.CRC != want {
			return fmt.Errorf("storage: snapshot checksum mismatch (have %08x, want %08x)", want, tr.CRC)
		}
	}
	return nil
}
