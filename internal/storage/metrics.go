// Samtree operation observability: latency histograms and op counters for
// the store's hot paths (insert, delete, weighted/uniform sampling, PALM
// batches). Metrics stay strictly optional — a nil *Metrics costs one branch
// per operation and no clock read — following the repo's nil-safe metrics
// convention.
package storage

import (
	"expvar"
	"fmt"
	"time"

	"platod2gl/internal/obs"
)

// Metrics aggregates per-operation counters and latency histograms for a
// DynamicStore. The zero value is ready to use; all methods are safe on a
// nil receiver.
type Metrics struct {
	Inserts     obs.Counter // AddEdge calls
	Deletes     obs.Counter // DeleteEdge calls
	Samples     obs.Counter // SampleNeighbors/SampleNeighborsUniform calls
	Batches     obs.Counter // ApplyBatch calls
	BatchEvents obs.Counter // events applied through ApplyBatch

	InsertLatency obs.Histogram // nanoseconds per AddEdge
	DeleteLatency obs.Histogram // nanoseconds per DeleteEdge
	SampleLatency obs.Histogram // nanoseconds per k-sample call (FTS/ITS descent)
	BatchLatency  obs.Histogram // nanoseconds per ApplyBatch (all workers)
}

// MetricsSnapshot is a plain-value copy of the counters.
type MetricsSnapshot struct {
	Inserts     int64
	Deletes     int64
	Samples     int64
	Batches     int64
	BatchEvents int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		Inserts:     m.Inserts.Load(),
		Deletes:     m.Deletes.Load(),
		Samples:     m.Samples.Load(),
		Batches:     m.Batches.Load(),
		BatchEvents: m.BatchEvents.Load(),
	}
}

// String renders the snapshot compactly for logs.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf("inserts=%d deletes=%d samples=%d batches=%d batch_events=%d",
		s.Inserts, s.Deletes, s.Samples, s.Batches, s.BatchEvents)
}

// Expvar returns an expvar.Var rendering the counters as a JSON object.
func (m *Metrics) Expvar() expvar.Var {
	return expvar.Func(func() any { return m.Snapshot() })
}

// Register attaches every counter and histogram to r under the stable
// platod2gl_storage_* names documented in docs/OPERATIONS.md.
func (m *Metrics) Register(r *obs.Registry) {
	if m == nil {
		return
	}
	for _, c := range []struct {
		name, help string
		c          *obs.Counter
	}{
		{"platod2gl_storage_inserts_total", "Single-edge AddEdge calls.", &m.Inserts},
		{"platod2gl_storage_deletes_total", "Single-edge DeleteEdge calls.", &m.Deletes},
		{"platod2gl_storage_samples_total", "Neighbor-sampling calls (weighted and uniform).", &m.Samples},
		{"platod2gl_storage_batches_total", "PALM batch applications.", &m.Batches},
		{"platod2gl_storage_batch_events_total", "Events applied through ApplyBatch.", &m.BatchEvents},
	} {
		r.RegisterCounter(c.name, c.help, nil, c.c)
	}
	r.RegisterHistogram("platod2gl_storage_insert_latency_seconds",
		"Samtree single-edge insert latency.", nil, 1e-9, &m.InsertLatency)
	r.RegisterHistogram("platod2gl_storage_delete_latency_seconds",
		"Samtree single-edge delete latency.", nil, 1e-9, &m.DeleteLatency)
	r.RegisterHistogram("platod2gl_storage_sample_latency_seconds",
		"Per-call neighbor-sampling latency (k draws, FTS/ITS descent).", nil, 1e-9, &m.SampleLatency)
	r.RegisterHistogram("platod2gl_storage_batch_latency_seconds",
		"PALM batch application latency (all workers).", nil, 1e-9, &m.BatchLatency)
}

// startTimer reads the clock only when metrics are enabled, so disabled
// stores pay a single nil check per operation.
func (m *Metrics) startTimer() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

func (m *Metrics) observeInsert(start time.Time) {
	if m != nil {
		m.Inserts.Add(1)
		m.InsertLatency.ObserveSince(start)
	}
}

func (m *Metrics) observeDelete(start time.Time) {
	if m != nil {
		m.Deletes.Add(1)
		m.DeleteLatency.ObserveSince(start)
	}
}

func (m *Metrics) observeSample(start time.Time) {
	if m != nil {
		m.Samples.Add(1)
		m.SampleLatency.ObserveSince(start)
	}
}

func (m *Metrics) observeBatch(start time.Time, events int) {
	if m != nil {
		m.Batches.Add(1)
		m.BatchEvents.Add(int64(events))
		m.BatchLatency.ObserveSince(start)
	}
}
