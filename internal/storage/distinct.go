package storage

import (
	"math/rand"

	"platod2gl/internal/graph"
)

// SampleNeighborsDistinct draws up to k *distinct* weighted neighbors of src
// (without replacement) — the sampling mode GNN frameworks use when fanout
// should not duplicate neighbors. When k >= degree it returns all neighbors.
//
// Strategy: weighted rejection sampling against a seen-set while the
// acceptance rate stays healthy, falling back to full enumeration with
// weighted partial selection when k approaches the degree (where rejection
// degenerates).
func (s *DynamicStore) SampleNeighborsDistinct(src graph.VertexID, et graph.EdgeType, k int, rng *rand.Rand, dst []graph.VertexID) []graph.VertexID {
	ent := s.entry(src, et, false)
	if ent == nil || k <= 0 {
		return dst
	}
	ent.mu.RLock()
	defer ent.mu.RUnlock()
	n := ent.tree.Len()
	if n == 0 {
		return dst
	}
	if k >= n {
		ids, _ := ent.tree.Neighbors()
		for _, id := range ids {
			dst = append(dst, graph.VertexID(id))
		}
		return dst
	}
	if k*4 <= n {
		// Sparse regime: rejection sampling terminates quickly.
		seen := make(map[uint64]bool, k)
		attempts := 0
		maxAttempts := 16 * k
		for len(seen) < k && attempts < maxAttempts {
			attempts++
			v, ok := ent.tree.SampleOne(rng)
			if !ok {
				break
			}
			if !seen[v] {
				seen[v] = true
				dst = append(dst, graph.VertexID(v))
			}
		}
		if len(seen) == k {
			return dst
		}
		// Pathological weight skew: fall through to enumeration for the
		// remainder.
		return s.distinctByEnumeration(ent, k-len(seen), rng, dst, seen)
	}
	return s.distinctByEnumeration(ent, k, rng, dst, nil)
}

// distinctByEnumeration materializes the neighbor list and performs weighted
// selection without replacement (k rounds of cumulative draw over the
// remainder) — O(n·k) worst case, used only when k is a large fraction of n.
func (s *DynamicStore) distinctByEnumeration(ent *treeEntry, k int, rng *rand.Rand, dst []graph.VertexID, exclude map[uint64]bool) []graph.VertexID {
	ids, weights := ent.tree.Neighbors()
	cand := make([]int, 0, len(ids))
	total := 0.0
	for i, id := range ids {
		if exclude != nil && exclude[id] {
			continue
		}
		cand = append(cand, i)
		total += weights[i]
	}
	for round := 0; round < k && len(cand) > 0 && total > 0; round++ {
		r := rng.Float64() * total
		cum := 0.0
		pick := len(cand) - 1
		for ci, i := range cand {
			cum += weights[i]
			if cum > r {
				pick = ci
				break
			}
		}
		i := cand[pick]
		dst = append(dst, graph.VertexID(ids[i]))
		total -= weights[i]
		cand[pick] = cand[len(cand)-1]
		cand = cand[:len(cand)-1]
	}
	return dst
}
