// Package cstable implements the cumulative sum table (CSTable) and the
// Inverse Transform Sampling (ITS) method described in Sec. II-B of the
// PlatoD2GL paper.
//
// A CSTable C over a weight array A stores strict prefix sums,
// C[i] = sum_{j<=i} A[j] (Eq. 2). Sampling an index is a binary search in
// O(log n); appending is O(1); but an in-place weight update or a deletion
// must rewrite every later prefix, costing O(n) — the inefficiency PlatoGL
// inherits and PlatoD2GL's FSTable removes (Table II).
//
// PlatoD2GL itself still uses CSTables in samtree internal nodes, where the
// element count is the (small) child fan-out and updates are weight deltas
// that only touch suffixes.
package cstable

import (
	"fmt"
	"sort"
)

// CSTable is a strict prefix-sum table. The zero value is an empty table
// ready to use. Not safe for concurrent mutation.
type CSTable struct {
	c []float64
}

// New builds a CSTable from raw weights in O(n).
func New(weights []float64) *CSTable {
	t := &CSTable{c: make([]float64, len(weights))}
	s := 0.0
	for i, w := range weights {
		s += w
		t.c[i] = s
	}
	return t
}

// NewWithCapacity returns an empty CSTable with room for c elements.
func NewWithCapacity(c int) *CSTable {
	return &CSTable{c: make([]float64, 0, c)}
}

// Len returns the number of weights in the table.
func (t *CSTable) Len() int { return len(t.c) }

// Total returns the sum of all weights in O(1).
func (t *CSTable) Total() float64 {
	if len(t.c) == 0 {
		return 0
	}
	return t.c[len(t.c)-1]
}

// Prefix returns the sum of weights with indices in [0, i] in O(1).
func (t *CSTable) Prefix(i int) float64 {
	if i < 0 || i >= len(t.c) {
		panic(fmt.Sprintf("cstable: Prefix index %d out of range [0,%d)", i, len(t.c)))
	}
	return t.c[i]
}

// Weight returns the raw weight at index i in O(1).
func (t *CSTable) Weight(i int) float64 {
	if i < 0 || i >= len(t.c) {
		panic(fmt.Sprintf("cstable: Weight index %d out of range [0,%d)", i, len(t.c)))
	}
	if i == 0 {
		return t.c[0]
	}
	return t.c[i] - t.c[i-1]
}

// Append adds a new weight at the end in O(1).
func (t *CSTable) Append(w float64) {
	t.c = append(t.c, t.Total()+w)
}

// Update sets the weight at index i to w, rewriting all later prefixes.
// O(n-i) — the CSTable's weakness for dynamic graphs.
func (t *CSTable) Update(i int, w float64) {
	t.AddFrom(i, w-t.Weight(i))
}

// AddFrom adds delta to the weight at index i by shifting every prefix sum
// at or after i. O(n-i).
func (t *CSTable) AddFrom(i int, delta float64) {
	if i < 0 || i >= len(t.c) {
		panic(fmt.Sprintf("cstable: AddFrom index %d out of range [0,%d)", i, len(t.c)))
	}
	for ; i < len(t.c); i++ {
		t.c[i] += delta
	}
}

// Delete removes the weight at index i, shifting later entries left and
// subtracting the removed weight from them. O(n-i).
func (t *CSTable) Delete(i int) {
	w := t.Weight(i)
	copy(t.c[i:], t.c[i+1:])
	t.c = t.c[:len(t.c)-1]
	for ; i < len(t.c); i++ {
		t.c[i] -= w
	}
}

// Insert inserts weight w at index i, shifting later entries right. O(n-i).
func (t *CSTable) Insert(i int, w float64) {
	if i < 0 || i > len(t.c) {
		panic(fmt.Sprintf("cstable: Insert index %d out of range [0,%d]", i, len(t.c)))
	}
	t.c = append(t.c, 0)
	copy(t.c[i+1:], t.c[i:])
	base := 0.0
	if i > 0 {
		base = t.c[i-1]
	}
	t.c[i] = base + w
	for j := i + 1; j < len(t.c); j++ {
		t.c[j] += w
	}
}

// Sample performs Inverse Transform Sampling: it returns the smallest index
// i with C[i] > r via binary search in O(log n). r should lie in
// [0, Total()); larger values clamp to the last index. Returns -1 on an
// empty table.
func (t *CSTable) Sample(r float64) int {
	n := len(t.c)
	if n == 0 {
		return -1
	}
	i := sort.Search(n, func(j int) bool { return t.c[j] > r })
	if i == n {
		i = n - 1
	}
	return i
}

// Weights reconstructs the raw weight array in O(n).
func (t *CSTable) Weights() []float64 {
	out := make([]float64, len(t.c))
	prev := 0.0
	for i, v := range t.c {
		out[i] = v - prev
		prev = v
	}
	return out
}

// Truncate drops all entries at index i and beyond.
func (t *CSTable) Truncate(i int) {
	if i < 0 || i > len(t.c) {
		panic(fmt.Sprintf("cstable: Truncate index %d out of range [0,%d]", i, len(t.c)))
	}
	t.c = t.c[:i]
}

// Reset empties the table, retaining the backing array.
func (t *CSTable) Reset() { t.c = t.c[:0] }

// Clone returns a deep copy of the table.
func (t *CSTable) Clone() *CSTable {
	c := make([]float64, len(t.c))
	copy(c, t.c)
	return &CSTable{c: c}
}

// MemoryBytes returns the structural memory footprint of the table.
func (t *CSTable) MemoryBytes() int64 {
	return int64(24 + 8*cap(t.c))
}
