package cstable

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func TestEmpty(t *testing.T) {
	var c CSTable
	if c.Len() != 0 || c.Total() != 0 {
		t.Fatalf("zero value not empty: len=%d total=%v", c.Len(), c.Total())
	}
	if got := c.Sample(0.1); got != -1 {
		t.Fatalf("Sample on empty = %d, want -1", got)
	}
}

func TestPaperExample1(t *testing.T) {
	// Vertex v3 in Example 1: neighbors with weights 0.6 and 0.7 —
	// CSTable should read [0.6, 1.3].
	c := New([]float64{0.6, 0.7})
	if !almostEqual(c.Prefix(0), 0.6) || !almostEqual(c.Prefix(1), 1.3) {
		t.Fatalf("CSTable = [%v %v], want [0.6 1.3]", c.Prefix(0), c.Prefix(1))
	}
}

func TestAppendUpdateDelete(t *testing.T) {
	c := NewWithCapacity(4)
	c.Append(1)
	c.Append(2)
	c.Append(3)
	if !almostEqual(c.Total(), 6) {
		t.Fatalf("Total = %v, want 6", c.Total())
	}
	c.Update(1, 5) // weights now 1,5,3
	want := []float64{1, 5, 3}
	got := c.Weights()
	for i := range want {
		if !almostEqual(got[i], want[i]) {
			t.Fatalf("Weights = %v, want %v", got, want)
		}
	}
	c.Delete(0) // weights now 5,3
	if c.Len() != 2 || !almostEqual(c.Total(), 8) {
		t.Fatalf("after delete: len=%d total=%v", c.Len(), c.Total())
	}
	if !almostEqual(c.Weight(0), 5) || !almostEqual(c.Weight(1), 3) {
		t.Fatalf("after delete weights = %v", c.Weights())
	}
}

func TestInsert(t *testing.T) {
	c := New([]float64{1, 3})
	c.Insert(1, 2) // weights 1,2,3
	want := []float64{1, 2, 3}
	got := c.Weights()
	for i := range want {
		if !almostEqual(got[i], want[i]) {
			t.Fatalf("Weights = %v, want %v", got, want)
		}
	}
	c.Insert(0, 10)
	if !almostEqual(c.Weight(0), 10) || c.Len() != 4 {
		t.Fatalf("head insert failed: %v", c.Weights())
	}
	c.Insert(4, 7)
	if !almostEqual(c.Weight(4), 7) {
		t.Fatalf("tail insert failed: %v", c.Weights())
	}
}

func TestSampleITS(t *testing.T) {
	c := New([]float64{1, 2, 3})
	cases := []struct {
		r    float64
		want int
	}{
		{0, 0}, {0.999, 0}, {1, 1}, {2.5, 1}, {3, 2}, {5.9, 2}, {6, 2}, {9, 2},
	}
	for _, tc := range cases {
		if got := c.Sample(tc.r); got != tc.want {
			t.Errorf("Sample(%v) = %d, want %d", tc.r, got, tc.want)
		}
	}
}

func TestSampleDistribution(t *testing.T) {
	weights := []float64{2, 1, 5, 2}
	c := New(weights)
	rng := rand.New(rand.NewSource(321))
	const trials = 100000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[c.Sample(rng.Float64()*c.Total())]++
	}
	chi2 := 0.0
	for i, w := range weights {
		expected := float64(trials) * w / c.Total()
		d := float64(counts[i]) - expected
		chi2 += d * d / expected
	}
	// 3 dof, p=0.001 critical value 16.27.
	if chi2 > 16.27 {
		t.Fatalf("chi-square = %v, counts=%v", chi2, counts)
	}
}

func TestAddFromShiftsSuffix(t *testing.T) {
	c := New([]float64{1, 1, 1, 1})
	c.AddFrom(2, 3) // weights 1,1,4,1
	wantPrefix := []float64{1, 2, 6, 7}
	for i, want := range wantPrefix {
		if got := c.Prefix(i); !almostEqual(got, want) {
			t.Fatalf("Prefix(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestTruncate(t *testing.T) {
	c := New([]float64{1, 2, 3, 4})
	c.Truncate(2)
	if c.Len() != 2 || !almostEqual(c.Total(), 3) {
		t.Fatalf("after truncate: len=%d total=%v", c.Len(), c.Total())
	}
}

func TestRandomOpsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := NewWithCapacity(0)
	var ref []float64
	naiveSample := func(r float64) int {
		s := 0.0
		for i, w := range ref {
			s += w
			if s > r {
				return i
			}
		}
		return len(ref) - 1
	}
	for step := 0; step < 8000; step++ {
		op := rng.Intn(4)
		switch {
		case op == 0 || len(ref) == 0:
			w := rng.Float64() * 4
			c.Append(w)
			ref = append(ref, w)
		case op == 1:
			i := rng.Intn(len(ref))
			w := rng.Float64() * 4
			c.Update(i, w)
			ref[i] = w
		case op == 2:
			i := rng.Intn(len(ref))
			c.Delete(i)
			ref = append(ref[:i], ref[i+1:]...)
		case op == 3:
			i := rng.Intn(len(ref) + 1)
			w := rng.Float64() * 4
			c.Insert(i, w)
			ref = append(ref, 0)
			copy(ref[i+1:], ref[i:])
			ref[i] = w
		}
		if step%499 == 0 && len(ref) > 0 {
			got := c.Weights()
			for i := range ref {
				if !almostEqual(got[i], ref[i]) {
					t.Fatalf("step %d: weights[%d] = %v, want %v", step, i, got[i], ref[i])
				}
			}
			total := 0.0
			for _, w := range ref {
				total += w
			}
			r := rng.Float64() * total
			if g, w := c.Sample(r), naiveSample(r); g != w {
				t.Fatalf("step %d: Sample(%v) = %d, want %d", step, r, g, w)
			}
		}
	}
}

func TestQuickPrefixMonotone(t *testing.T) {
	prop := func(raw []float64) bool {
		weights := make([]float64, 0, len(raw))
		for _, v := range raw {
			weights = append(weights, math.Abs(math.Mod(v, 10)))
		}
		c := New(weights)
		prev := -1.0
		for i := 0; i < c.Len(); i++ {
			p := c.Prefix(i)
			if p < prev-eps {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPanics(t *testing.T) {
	c := New([]float64{1})
	for name, fn := range map[string]func(){
		"Prefix":   func() { c.Prefix(2) },
		"Weight":   func() { c.Weight(-1) },
		"AddFrom":  func() { c.AddFrom(9, 1) },
		"Insert":   func() { c.Insert(5, 1) },
		"Truncate": func() { c.Truncate(9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkUpdate(b *testing.B) {
	const n = 1 << 12
	c := NewWithCapacity(n)
	for i := 0; i < n; i++ {
		c.Append(1)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Update(rng.Intn(n), 2)
	}
}

func BenchmarkSample(b *testing.B) {
	const n = 1 << 12
	c := NewWithCapacity(n)
	for i := 0; i < n; i++ {
		c.Append(1)
	}
	rng := rand.New(rand.NewSource(1))
	total := c.Total()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sample(rng.Float64() * total)
	}
}
