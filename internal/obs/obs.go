// Package obs is the repo's unified observability layer: lock-cheap metric
// primitives (atomic counters, gauges, bounded log-scale latency histograms)
// plus a Registry that exposes everything in Prometheus text format and
// bridges to expvar. Every layer with a hot path — cluster RPC, the samtree
// store, the sampling views, the prefetch pipeline, checkpointing — records
// into these primitives; the binaries mount one Registry per process on
// -metrics-addr.
//
// Design constraints, in order:
//
//  1. Hot-path cost: one atomic add for counters, two-three atomic adds for a
//     histogram observation. No locks, no allocation, no time formatting.
//  2. Zero values work: the existing per-package Metrics structs embed these
//     primitives by value, and their documented contract is "the zero value
//     is ready to use".
//  3. Exposition is pull-side work: quantile estimation, bucket scaling, and
//     text formatting all happen at scrape time, never at record time.
package obs

import (
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use. Counters must not be copied after first use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is a programming error but is not
// checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, in-flight batches).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistogramVec is a lazily populated family of histograms sharing one metric
// name and distinguished by a single label value (e.g. per RPC method). The
// zero value is ready to use. Lookup is an RWMutex read on the hot path;
// callers on very hot paths can cache the *Histogram returned by With, since
// children are never removed.
type HistogramVec struct {
	mu sync.RWMutex
	m  map[string]*Histogram
}

// With returns the histogram for the given label value, creating it on first
// use.
func (v *HistogramVec) With(label string) *Histogram {
	v.mu.RLock()
	h := v.m[label]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.m == nil {
		v.m = make(map[string]*Histogram)
	}
	if h = v.m[label]; h == nil {
		h = &Histogram{}
		v.m[label] = h
	}
	return h
}

// Labels returns the label values present, in unspecified order.
func (v *HistogramVec) Labels() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.m))
	for l := range v.m {
		out = append(out, l)
	}
	return out
}

// CounterVec is a lazily populated family of counters sharing one metric name
// and distinguished by a single label value. The zero value is ready to use.
// As with HistogramVec, children are never removed, so hot paths can cache
// the *Counter returned by With.
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// With returns the counter for the given label value, creating it on first
// use.
func (v *CounterVec) With(label string) *Counter {
	v.mu.RLock()
	c := v.m[label]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.m == nil {
		v.m = make(map[string]*Counter)
	}
	if c = v.m[label]; c == nil {
		c = &Counter{}
		v.m[label] = c
	}
	return c
}

// Labels returns the label values present, in unspecified order.
func (v *CounterVec) Labels() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.m))
	for l := range v.m {
		out = append(out, l)
	}
	return out
}

// Sum returns the total across all children — the "family total" a summary
// line wants without re-walking labels.
func (v *CounterVec) Sum() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var n int64
	for _, c := range v.m {
		n += c.Load()
	}
	return n
}
