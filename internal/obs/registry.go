package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Labels is a static label set attached to a metric at registration time.
// Label values are fixed for the metric's lifetime (dynamic label values go
// through HistogramVec's single label instead).
type Labels map[string]string

// signature renders labels deterministically for dedup and exposition:
// `{k1="v1",k2="v2"}` with keys sorted, or "" when empty.
func (l Labels) signature() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// kind discriminates the exposition shape.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered series.
type metric struct {
	name   string
	help   string
	labels Labels
	sig    string // labels.signature(), cached
	kind   kind
	scale  float64 // histogram exposition multiplier (1e-9: ns -> seconds)

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry holds a process's metric series and renders them for scraping.
// Registration is rare (startup) and locked; scraping walks a stable
// snapshot of the registration list. The zero value is not usable — call
// NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	metrics []*metric
	byKey   map[string]*metric // name+sig -> metric, duplicate detection
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// register adds m, panicking on a duplicate (name, labels) pair or an
// invalid name — both are programming errors worth failing loudly at
// startup rather than silently shadowing a series.
func (r *Registry) register(m *metric) {
	if m.name == "" || strings.ContainsAny(m.name, " \t\n{}\"") {
		panic(fmt.Sprintf("obs: invalid metric name %q", m.name))
	}
	m.sig = m.labels.signature()
	key := m.name + m.sig
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byKey[key]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %s%s", m.name, m.sig))
	}
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, labels, c)
	return c
}

// RegisterCounter attaches an existing counter (typically a field of a
// per-package Metrics struct) to the registry under name.
func (r *Registry) RegisterCounter(name, help string, labels Labels, c *Counter) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindCounter, counter: c})
}

// Gauge registers and returns a new gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(name, help, labels, g)
	return g
}

// RegisterGauge attaches an existing gauge (typically a field of a
// per-package Metrics struct) to the registry under name.
func (r *Registry) RegisterGauge(name, help string, labels Labels, g *Gauge) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindGauge, gauge: g})
}

// GaugeFunc registers a gauge whose value is computed at scrape time (edge
// counts, memory footprints — anything the owning structure already tracks).
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindGaugeFunc, gaugeFn: fn})
}

// RegisterHistogram attaches an existing histogram to the registry. scale
// multiplies recorded values at exposition time (use 1e-9 for
// nanosecond-recorded latencies exposed as Prometheus seconds; 1 for byte
// sizes); <= 0 means 1.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, scale float64, h *Histogram) {
	if scale <= 0 {
		scale = 1
	}
	r.register(&metric{name: name, help: help, labels: labels, kind: kindHistogram, scale: scale, hist: h})
}

// Histogram registers and returns a new histogram series.
func (r *Registry) Histogram(name, help string, labels Labels, scale float64) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, help, labels, scale, h)
	return h
}

// RegisterHistogramVec attaches every child of a HistogramVec under one
// metric name, labeled by labelKey. Children are bound at call time; callers
// pre-seed the vec with their known label values before registering so the
// full family is scraped from the first exposition (see
// cluster.Metrics.Register).
func (r *Registry) RegisterHistogramVec(name, help, labelKey string, scale float64, v *HistogramVec) {
	labels := v.Labels()
	sort.Strings(labels)
	for _, lv := range labels {
		r.RegisterHistogram(name, help, Labels{labelKey: lv}, scale, v.With(lv))
	}
}

// RegisterCounterVec2 attaches every child of a CounterVec under one metric
// name with two labels. Child keys are composite "v1|v2" strings (the hot
// path increments one flat map entry); this splits them back into proper
// two-label series at registration. As with RegisterHistogramVec, children
// are bound at call time — pre-seed the vec with every expected combination
// before registering.
func (r *Registry) RegisterCounterVec2(name, help, key1, key2 string, v *CounterVec) {
	labels := v.Labels()
	sort.Strings(labels)
	for _, lv := range labels {
		v1, v2, ok := strings.Cut(lv, "|")
		if !ok {
			v2 = ""
		}
		r.RegisterCounter(name, help, Labels{key1: v1, key2: v2}, v.With(lv))
	}
}

// snapshotList copies the registration list for lock-free iteration.
func (r *Registry) snapshotList() []*metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	return out
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4), sorted by name then label signature so
// output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ms := r.snapshotList()
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].sig < ms[j].sig
	})
	var lastName string
	for _, m := range ms {
		if m.name != lastName {
			lastName = m.name
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind.promType()); err != nil {
				return err
			}
		}
		if err := m.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (k kind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// write renders one series.
func (m *metric) write(w io.Writer) error {
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, m.sig, m.counter.Load())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, m.sig, m.gauge.Load())
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", m.name, m.sig, formatFloat(m.gaugeFn()))
		return err
	case kindHistogram:
		return m.writeHistogram(w)
	}
	return nil
}

// writeHistogram emits the cumulative _bucket/_sum/_count triplet. Buckets
// are emitted up to the highest populated one (plus +Inf), keeping scrapes
// compact while staying valid exposition.
func (m *metric) writeHistogram(w io.Writer) error {
	s := m.hist.Snapshot()
	maxB := -1
	for i, b := range s.Buckets {
		if b > 0 {
			maxB = i
		}
	}
	var cum int64
	for i := 0; i <= maxB; i++ {
		cum += s.Buckets[i]
		le := formatFloat(float64(BucketUpper(i)) * m.scale)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, m.bucketSig(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, m.bucketSig("+Inf"), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.name, m.sig, formatFloat(float64(s.Sum)*m.scale)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.sig, s.Count)
	return err
}

// bucketSig merges the le label into the metric's static label signature.
func (m *metric) bucketSig(le string) string {
	if m.sig == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("%s,le=%q}", strings.TrimSuffix(m.sig, "}"), le)
}

// formatFloat renders a float compactly: integers without a decimal point,
// everything else rounded to 6 significant digits (bucket bounds are
// power-of-two approximations already; exact decimals would only expose
// float64 noise like 3.0000000000000004e-09).
func formatFloat(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.6g", f)
}

// Handler returns an http.Handler serving the Prometheus text exposition —
// mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Expvar bridges the whole registry to expvar as one JSON object: counters
// and gauges as numbers, histograms as {count, sum, p50, p95, p99} summaries
// — keyed by name plus label signature.
func (r *Registry) Expvar() expvar.Var {
	return expvar.Func(func() any {
		out := make(map[string]any)
		for _, m := range r.snapshotList() {
			key := m.name + m.sig
			switch m.kind {
			case kindCounter:
				out[key] = m.counter.Load()
			case kindGauge:
				out[key] = m.gauge.Load()
			case kindGaugeFunc:
				out[key] = m.gaugeFn()
			case kindHistogram:
				s := m.hist.Snapshot()
				out[key] = map[string]any{
					"count": s.Count,
					"sum":   s.Sum,
					"p50":   s.P50(),
					"p95":   s.P95(),
					"p99":   s.P99(),
				}
			}
		}
		return out
	})
}
