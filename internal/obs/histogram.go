package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram: bucket 0 holds
// the value 0, bucket i >= 1 holds values in [2^(i-1), 2^i). 64 buckets
// cover the whole non-negative int64 range, so an observation can never
// overflow the scheme — recording nanoseconds, bucket 34 is ~17s and bucket
// 63 is ~292 years.
const NumBuckets = 64

// Histogram is a bounded log-scale (powers-of-two) histogram of non-negative
// int64 observations — typically latencies in nanoseconds or payload sizes
// in bytes. Recording is three atomic adds and no allocation; quantile
// estimation happens at snapshot time. The zero value is ready to use.
// Histograms must not be copied after first use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// bucketOf maps a value to its bucket index: 0 -> 0, otherwise
// 1 + floor(log2(v)) == bits.Len64(v).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpper returns the inclusive upper bound of bucket i (the largest
// value the bucket can hold).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<uint(i) - 1
}

// bucketLower returns the smallest value bucket i can hold.
func bucketLower(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << uint(i-1)
}

// Observe records one value. Negative values are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveSince records the elapsed nanoseconds since start — the common
// latency-recording idiom: defer-free, one time.Since on the hot path.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot copies the histogram into a plain value for quantile math,
// printing, and JSON encoding. Concurrent writers may land between the
// individual bucket loads; the snapshot is still a valid histogram (every
// complete observation before the call is included, buckets and count may
// disagree by in-flight observations — bounded by writer concurrency).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	// Load buckets first: an observation that lands mid-snapshot then
	// inflates count/sum but not its bucket, and quantile math clamps to the
	// bucket totals, never reads past them.
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [NumBuckets]int64
}

// Merge accumulates other into s (for combining per-worker or per-epoch
// histograms).
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// total returns the bucket-count total, the denominator quantile math must
// use (Count may be momentarily ahead under concurrent writers).
func (s HistogramSnapshot) total() int64 {
	var t int64
	for _, b := range s.Buckets {
		t += b
	}
	return t
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the covering bucket. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := s.total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank in [1, total]: the observation index the quantile names.
	rank := int64(q*float64(total-1)) + 1
	var cum int64
	for i, b := range s.Buckets {
		if b == 0 {
			continue
		}
		cum += b
		if cum < rank {
			continue
		}
		lo, hi := bucketLower(i), BucketUpper(i)
		if lo == hi {
			return float64(lo)
		}
		// Position of the ranked observation within this bucket, in (0, 1].
		frac := float64(rank-(cum-b)) / float64(b)
		return float64(lo) + frac*float64(hi-lo)
	}
	return float64(BucketUpper(NumBuckets - 1))
}

// P50 is Quantile(0.50).
func (s HistogramSnapshot) P50() float64 { return s.Quantile(0.50) }

// P95 is Quantile(0.95).
func (s HistogramSnapshot) P95() float64 { return s.Quantile(0.95) }

// P99 is Quantile(0.99).
func (s HistogramSnapshot) P99() float64 { return s.Quantile(0.99) }

// Mean returns the exact arithmetic mean of the observations (sum/count), 0
// when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
