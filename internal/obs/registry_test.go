package obs

import (
	"encoding/json"
	"flag"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with deterministic contents covering
// every metric kind, label shapes, and the histogram triplet.
func goldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("platod2gl_test_requests_total", "Requests handled.", nil)
	c.Add(42)
	r.Counter("platod2gl_test_errors_total", "Errors by class.", Labels{"class": "timeout"}).Add(3)
	r.Counter("platod2gl_test_errors_total", "Errors by class.", Labels{"class": "reset"}).Add(1)
	g := r.Gauge("platod2gl_test_depth", "Queue depth.", nil)
	g.Set(7)
	r.GaugeFunc("platod2gl_test_edges", "Edge count.", nil, func() float64 { return 12345 })
	h := r.Histogram("platod2gl_test_latency_seconds", "Call latency.", Labels{"method": "Sample"}, 1e-9)
	// Nanosecond observations spanning three buckets.
	h.Observe(800)       // bucket [512,1023]
	h.Observe(900)       // bucket [512,1023]
	h.Observe(70_000)    // bucket [65536,131071]
	h.Observe(2_000_000) // bucket [1048576,2097151]
	var vec HistogramVec
	vec.With("bytes").Observe(4096)
	r.RegisterHistogramVec("platod2gl_test_payload_bytes", "Payload sizes.", "kind", 1, &vec)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusExpositionShape(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Structural checks independent of the golden bytes: one TYPE line per
	// metric name, cumulative buckets ending in +Inf == count.
	if c := strings.Count(out, "# TYPE platod2gl_test_errors_total counter"); c != 1 {
		t.Errorf("TYPE line for labeled counter appears %d times, want 1", c)
	}
	if !strings.Contains(out, `platod2gl_test_latency_seconds_bucket{method="Sample",le="+Inf"} 4`) {
		t.Errorf("missing +Inf bucket == count:\n%s", out)
	}
	if !strings.Contains(out, `platod2gl_test_latency_seconds_count{method="Sample"} 4`) {
		t.Errorf("missing histogram count:\n%s", out)
	}
	if !strings.Contains(out, `platod2gl_test_errors_total{class="reset"} 1`) {
		t.Errorf("missing labeled counter sample:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	srv := httptest.NewServer(goldenRegistry().Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "platod2gl_test_requests_total 42") {
		t.Errorf("handler output missing counter:\n%s", body)
	}
}

func TestExpvarBridge(t *testing.T) {
	v := goldenRegistry().Expvar()
	var decoded map[string]any
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	if got := decoded["platod2gl_test_requests_total"]; got != float64(42) {
		t.Errorf("counter via expvar = %v, want 42", got)
	}
	hist, ok := decoded[`platod2gl_test_latency_seconds{method="Sample"}`].(map[string]any)
	if !ok {
		t.Fatalf("histogram summary missing from expvar output: %v", decoded)
	}
	if hist["count"] != float64(4) {
		t.Errorf("histogram count via expvar = %v, want 4", hist["count"])
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "", Labels{"a": "b"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "", Labels{"a": "b"})
}
