package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {127, 7}, {128, 8},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for i := 1; i < NumBuckets-1; i++ {
		lo, hi := bucketLower(i), BucketUpper(i)
		if bucketOf(lo) != i || bucketOf(hi) != i {
			t.Errorf("bucket %d bounds [%d,%d] do not round-trip", i, lo, hi)
		}
		if bucketOf(hi+1) != i+1 {
			t.Errorf("bucket %d upper+1 lands in %d, want %d", i, bucketOf(hi+1), i+1)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().P50(); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	// 1000 observations of the same value: every quantile must land in that
	// value's bucket.
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 100_000 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
	lo, hi := float64(64), float64(127) // bucket of 100
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		v := s.Quantile(q)
		if v < lo || v > hi {
			t.Errorf("quantile(%v) = %v outside value bucket [%v,%v]", q, v, lo, hi)
		}
	}
	if !(s.P50() <= s.P95() && s.P95() <= s.P99()) {
		t.Errorf("quantiles not monotonic: p50=%v p95=%v p99=%v", s.P50(), s.P95(), s.P99())
	}
	if got := s.Mean(); got != 100 {
		t.Errorf("mean = %v, want 100", got)
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	// 90 fast observations and 10 slow ones: p50 must sit in the fast
	// bucket, p99 in the slow bucket.
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(1000) // bucket [512, 1023]
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000) // bucket [524288, 1048575]
	}
	s := h.Snapshot()
	if p := s.P50(); p < 512 || p > 1023 {
		t.Errorf("p50 = %v, want within fast bucket [512,1023]", p)
	}
	if p := s.P99(); p < 524288 || p > 1048575 {
		t.Errorf("p99 = %v, want within slow bucket [524288,1048575]", p)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	for i := int64(1); i <= 100; i++ {
		a.Observe(i)
		both.Observe(i)
	}
	for i := int64(1000); i < 1050; i++ {
		b.Observe(i)
		both.Observe(i)
	}
	m := a.Snapshot()
	m.Merge(b.Snapshot())
	want := both.Snapshot()
	if m != want {
		t.Fatalf("merged snapshot differs from combined histogram:\n got %+v\nwant %+v", m, want)
	}
}

// TestHistogramConcurrent hammers one histogram from many writers while a
// reader snapshots it, then verifies the final totals are exact. Run under
// -race this is the histogram's data-race proof.
func TestHistogramConcurrent(t *testing.T) {
	const (
		writers = 8
		perW    = 10_000
	)
	var h Histogram
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			// A mid-flight snapshot must stay internally sane: bucket total
			// never exceeds count (buckets are loaded before count).
			if tot := s.total(); tot > s.Count {
				t.Errorf("snapshot buckets %d > count %d", tot, s.Count)
				return
			}
			_ = s.P99()
		}
	}()
	var wg sync.WaitGroup
	var wantSum int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(int64(w*perW + i))
			}
		}(w)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i++ {
			wantSum += int64(w*perW + i)
		}
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	s := h.Snapshot()
	if s.Count != writers*perW {
		t.Fatalf("count = %d, want %d", s.Count, writers*perW)
	}
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if tot := s.total(); tot != s.Count {
		t.Fatalf("bucket total %d != count %d", tot, s.Count)
	}
}

func TestHistogramVecConcurrent(t *testing.T) {
	var v HistogramVec
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("m%d", w%3)
			for i := 0; i < 1000; i++ {
				v.With(label).Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := len(v.Labels()); got != 3 {
		t.Fatalf("labels = %d, want 3", got)
	}
	var total int64
	for _, l := range v.Labels() {
		total += v.With(l).Count()
	}
	if total != 8*1000 {
		t.Fatalf("total observations = %d, want 8000", total)
	}
}

func TestObserveSince(t *testing.T) {
	var h Histogram
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	s := h.Snapshot()
	if s.Count != 1 || s.Sum < int64(time.Millisecond) {
		t.Fatalf("count=%d sum=%d, want 1 observation >= 1ms", s.Count, s.Sum)
	}
}
