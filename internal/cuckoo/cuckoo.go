// Package cuckoo implements a concurrent cuckoo hashmap keyed by uint64
// vertex IDs, in the spirit of MemC3 / libcuckoo (refs [7], [23] of the
// PlatoD2GL paper). The storage layer (Sec. IV-B) keeps the source-vertex →
// ⟨degree, samtree⟩ mapping here so multiple sources can be updated
// concurrently.
//
// Layout: the key space is split across fixed shards by high hash bits; each
// shard is an independent 2-choice, 4-way set-associative cuckoo table
// guarded by its own mutex. Lookups take only the shard's read lock; inserts
// use random-walk eviction with a bounded kick chain, doubling the shard's
// bucket array when a chain fails. This gives hand-over-hand-free operation
// with at most one lock per call and ~95% load factors per shard.
package cuckoo

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

const (
	slotsPerBucket = 4
	maxKicks       = 256
	defaultShards  = 64
	minBuckets     = 8
)

// splitmix64 is a strong 64-bit mixer used for both bucket hash functions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

type bucket[V any] struct {
	keys [slotsPerBucket]uint64
	vals [slotsPerBucket]V
	used [slotsPerBucket]bool
}

type shard[V any] struct {
	mu      sync.RWMutex
	buckets []bucket[V]
	mask    uint64
	size    int
	rng     *rand.Rand
	// pending holds an entry displaced out of the table by a failed kick
	// chain, awaiting reinsertion during the next grow.
	pending []pendingEntry[V]
}

// Map is a concurrent cuckoo hashmap from uint64 to V.
type Map[V any] struct {
	shards    []shard[V]
	shardMask uint64
	length    atomic.Int64
}

// New returns an empty map with the default shard count.
func New[V any]() *Map[V] { return NewWithShards[V](defaultShards) }

// NewWithShards returns an empty map with the given power-of-two shard count.
func NewWithShards[V any](n int) *Map[V] {
	if n <= 0 || n&(n-1) != 0 {
		panic("cuckoo: shard count must be a positive power of two")
	}
	m := &Map[V]{shards: make([]shard[V], n), shardMask: uint64(n - 1)}
	for i := range m.shards {
		s := &m.shards[i]
		s.buckets = make([]bucket[V], minBuckets)
		s.mask = minBuckets - 1
		s.rng = rand.New(rand.NewSource(int64(0x5eed + i)))
	}
	return m
}

func (m *Map[V]) shardFor(key uint64) *shard[V] {
	return &m.shards[splitmix64(key^0xabcdef12345)&m.shardMask]
}

// h1 and h2 are the two candidate bucket indexes for a key within a shard.
func (s *shard[V]) h1(key uint64) uint64 { return splitmix64(key) & s.mask }
func (s *shard[V]) h2(key uint64) uint64 {
	return splitmix64(key^0x6a09e667f3bcc909) & s.mask
}

// Get returns the value for key and whether it is present.
func (m *Map[V]) Get(key uint64) (V, bool) {
	s := m.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.get(key)
}

func (s *shard[V]) get(key uint64) (V, bool) {
	for _, bi := range [2]uint64{s.h1(key), s.h2(key)} {
		b := &s.buckets[bi]
		for i := 0; i < slotsPerBucket; i++ {
			if b.used[i] && b.keys[i] == key {
				return b.vals[i], true
			}
		}
	}
	var zero V
	return zero, false
}

// Put inserts or overwrites the value for key. It reports whether the key
// was newly inserted.
func (m *Map[V]) Put(key uint64, val V) bool {
	s := m.shardFor(key)
	s.mu.Lock()
	inserted := s.put(key, val)
	s.mu.Unlock()
	if inserted {
		m.length.Add(1)
	}
	return inserted
}

// GetOrCreate returns the existing value for key, or stores and returns the
// value produced by create. create runs under the shard lock, so it must not
// touch the map.
func (m *Map[V]) GetOrCreate(key uint64, create func() V) (V, bool) {
	s := m.shardFor(key)
	s.mu.Lock()
	if v, ok := s.get(key); ok {
		s.mu.Unlock()
		return v, false
	}
	v := create()
	s.put(key, v)
	s.mu.Unlock()
	m.length.Add(1)
	return v, true
}

// Update applies fn to the value stored under key while holding the shard
// lock, storing the result back. If the key is absent, fn receives the zero
// value and ok=false, and the result is inserted. The function must not
// touch the map.
func (m *Map[V]) Update(key uint64, fn func(old V, ok bool) V) {
	s := m.shardFor(key)
	s.mu.Lock()
	old, ok := s.get(key)
	inserted := s.put(key, fn(old, ok))
	s.mu.Unlock()
	if inserted {
		m.length.Add(1)
	}
}

func (s *shard[V]) put(key uint64, val V) bool {
	// Overwrite in place if present.
	for _, bi := range [2]uint64{s.h1(key), s.h2(key)} {
		b := &s.buckets[bi]
		for i := 0; i < slotsPerBucket; i++ {
			if b.used[i] && b.keys[i] == key {
				b.vals[i] = val
				return false
			}
		}
	}
	for !s.insertNew(key, val) {
		s.grow()
	}
	s.size++
	return true
}

// insertNew places a key known to be absent, using random-walk cuckoo
// eviction. Reports false if the kick chain exceeded its budget.
func (s *shard[V]) insertNew(key uint64, val V) bool {
	curKey, curVal := key, val
	bi := s.h1(curKey)
	for kick := 0; kick < maxKicks; kick++ {
		b := &s.buckets[bi]
		for i := 0; i < slotsPerBucket; i++ {
			if !b.used[i] {
				b.keys[i], b.vals[i], b.used[i] = curKey, curVal, true
				return true
			}
		}
		// Also try the alternate bucket before evicting.
		alt := s.h2(curKey)
		if alt == bi {
			alt = s.h1(curKey)
		}
		ab := &s.buckets[alt]
		for i := 0; i < slotsPerBucket; i++ {
			if !ab.used[i] {
				ab.keys[i], ab.vals[i], ab.used[i] = curKey, curVal, true
				return true
			}
		}
		// Evict a random victim from the current bucket and displace it to
		// its alternate bucket.
		vi := s.rng.Intn(slotsPerBucket)
		b.keys[vi], curKey = curKey, b.keys[vi]
		b.vals[vi], curVal = curVal, b.vals[vi]
		if s.h1(curKey) == bi {
			bi = s.h2(curKey)
		} else {
			bi = s.h1(curKey)
		}
	}
	// Chain failed: put the displaced element back is unnecessary — the
	// caller grows the table which rehashes everything, including curKey.
	s.pending = append(s.pending, pendingEntry[V]{curKey, curVal})
	return false
}

type pendingEntry[V any] struct {
	key uint64
	val V
}

// grow doubles the bucket array and rehashes, including any entry displaced
// out of the table by a failed kick chain.
func (s *shard[V]) grow() {
	old := s.buckets
	s.buckets = make([]bucket[V], len(old)*2)
	s.mask = uint64(len(s.buckets) - 1)
	reinsert := func(k uint64, v V) {
		for !s.insertNew(k, v) {
			// Extremely unlikely with a fresh, half-empty table, but keep
			// growing until it fits.
			s.growInPlace()
		}
	}
	pend := s.pending
	s.pending = nil
	for i := range old {
		b := &old[i]
		for j := 0; j < slotsPerBucket; j++ {
			if b.used[j] {
				reinsert(b.keys[j], b.vals[j])
			}
		}
	}
	for _, p := range pend {
		reinsert(p.key, p.val)
	}
}

// growInPlace doubles the bucket array rehashing existing entries only (no
// pending handling; used from within grow's reinsertion loop).
func (s *shard[V]) growInPlace() {
	old := s.buckets
	s.buckets = make([]bucket[V], len(old)*2)
	s.mask = uint64(len(s.buckets) - 1)
	for i := range old {
		b := &old[i]
		for j := 0; j < slotsPerBucket; j++ {
			if b.used[j] {
				if !s.insertNew(b.keys[j], b.vals[j]) {
					// With load factor <= 50% this cannot happen; if it does,
					// recurse.
					s.growInPlace()
					s.insertNew(b.keys[j], b.vals[j])
				}
			}
		}
	}
}

// Delete removes key, reporting whether it was present.
func (m *Map[V]) Delete(key uint64) bool {
	s := m.shardFor(key)
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	for _, bi := range [2]uint64{s.h1(key), s.h2(key)} {
		b := &s.buckets[bi]
		for i := 0; i < slotsPerBucket; i++ {
			if b.used[i] && b.keys[i] == key {
				var zero V
				b.used[i] = false
				b.keys[i] = 0
				b.vals[i] = zero
				s.size--
				m.length.Add(-1)
				return true
			}
		}
	}
	return false
}

// Len returns the number of stored keys.
func (m *Map[V]) Len() int { return int(m.length.Load()) }

// Range calls fn for every entry until fn returns false. It holds one shard
// read-lock at a time; entries inserted or removed concurrently may or may
// not be observed.
func (m *Map[V]) Range(fn func(key uint64, val V) bool) {
	for si := range m.shards {
		s := &m.shards[si]
		s.mu.RLock()
		for bi := range s.buckets {
			b := &s.buckets[bi]
			for i := 0; i < slotsPerBucket; i++ {
				if b.used[i] {
					if !fn(b.keys[i], b.vals[i]) {
						s.mu.RUnlock()
						return
					}
				}
			}
		}
		s.mu.RUnlock()
	}
}

// Keys returns a snapshot of all keys. Order is unspecified.
func (m *Map[V]) Keys() []uint64 {
	out := make([]uint64, 0, m.Len())
	m.Range(func(k uint64, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// MemoryBytes returns the structural footprint of the table itself
// (buckets; not the pointed-to values). keySize/valSize describe one slot.
func (m *Map[V]) MemoryBytes(valSize int64) int64 {
	var total int64
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		total += int64(cap(s.buckets)) * slotsPerBucket * (8 + 1 + valSize)
		s.mu.RUnlock()
	}
	return total
}
