package cuckoo

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicPutGet(t *testing.T) {
	m := New[string]()
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map returned a value")
	}
	if !m.Put(1, "a") {
		t.Fatal("Put of new key reported overwrite")
	}
	if m.Put(1, "b") {
		t.Fatal("Put of existing key reported insert")
	}
	if v, ok := m.Get(1); !ok || v != "b" {
		t.Fatalf("Get(1) = %q,%v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestDelete(t *testing.T) {
	m := New[int]()
	m.Put(7, 70)
	if !m.Delete(7) {
		t.Fatal("Delete of present key returned false")
	}
	if m.Delete(7) {
		t.Fatal("Delete of absent key returned true")
	}
	if _, ok := m.Get(7); ok {
		t.Fatal("deleted key still present")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

func TestZeroKey(t *testing.T) {
	m := New[int]()
	m.Put(0, 42)
	if v, ok := m.Get(0); !ok || v != 42 {
		t.Fatalf("Get(0) = %d,%v", v, ok)
	}
	m.Delete(0)
	if _, ok := m.Get(0); ok {
		t.Fatal("zero key survived deletion")
	}
}

func TestGetOrCreate(t *testing.T) {
	m := New[*int]()
	calls := 0
	mk := func() *int { calls++; x := 5; return &x }
	v1, created := m.GetOrCreate(3, mk)
	if !created || *v1 != 5 {
		t.Fatalf("first GetOrCreate: created=%v v=%v", created, v1)
	}
	v2, created := m.GetOrCreate(3, mk)
	if created || v2 != v1 {
		t.Fatalf("second GetOrCreate: created=%v same=%v", created, v2 == v1)
	}
	if calls != 1 {
		t.Fatalf("create called %d times, want 1", calls)
	}
}

func TestUpdate(t *testing.T) {
	m := New[int]()
	m.Update(9, func(old int, ok bool) int {
		if ok {
			t.Fatal("ok=true for absent key")
		}
		return 1
	})
	m.Update(9, func(old int, ok bool) int {
		if !ok || old != 1 {
			t.Fatalf("old=%d ok=%v", old, ok)
		}
		return old + 1
	})
	if v, _ := m.Get(9); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
}

func TestGrowthManyKeys(t *testing.T) {
	m := NewWithShards[uint64](4)
	const n = 200000
	for i := uint64(0); i < n; i++ {
		m.Put(i, i*3)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := m.Get(i); !ok || v != i*3 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestAdversarialKeys(t *testing.T) {
	// Keys crafted to collide in the low bits.
	m := NewWithShards[int](1)
	const n = 5000
	for i := 0; i < n; i++ {
		m.Put(uint64(i)<<40, i)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(uint64(i) << 40); !ok || v != i {
			t.Fatalf("Get = %d,%v, want %d", v, ok, i)
		}
	}
}

func TestRangeAndKeys(t *testing.T) {
	m := New[int]()
	want := map[uint64]int{1: 10, 2: 20, 3: 30}
	for k, v := range want {
		m.Put(k, v)
	}
	got := map[uint64]int{}
	m.Range(func(k uint64, v int) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%d] = %d, want %d", k, got[k], v)
		}
	}
	if ks := m.Keys(); len(ks) != 3 {
		t.Fatalf("Keys len = %d", len(ks))
	}
	// Early termination.
	visits := 0
	m.Range(func(uint64, int) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("Range visited %d after stop, want 1", visits)
	}
}

func TestConcurrentMixed(t *testing.T) {
	m := New[int]()
	const (
		goroutines = 8
		perG       = 20000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			base := uint64(g) * perG
			for i := 0; i < perG; i++ {
				k := base + uint64(i)
				m.Put(k, i)
				if rng.Intn(4) == 0 {
					m.Delete(k)
				} else if v, ok := m.Get(k); !ok || v != i {
					t.Errorf("g%d: Get(%d) = %d,%v", g, k, v, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Verify every surviving key maps to the correct value.
	m.Range(func(k uint64, v int) bool {
		if uint64(v) != k%perG {
			t.Errorf("corrupt entry %d -> %d", k, v)
			return false
		}
		return true
	})
}

func TestConcurrentGetOrCreateSingleWinner(t *testing.T) {
	m := New[*int]()
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([]*int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, _ := m.GetOrCreate(42, func() *int { x := g; return &x })
			results[g] = v
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatal("GetOrCreate produced multiple values for one key")
		}
	}
}

func TestQuickAgainstBuiltinMap(t *testing.T) {
	prop := func(keys []uint64, vals []int) bool {
		m := New[int]()
		ref := map[uint64]int{}
		for i, k := range keys {
			v := 0
			if i < len(vals) {
				v = vals[i]
			}
			m.Put(k, v)
			ref[k] = v
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := m.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBadShardCountPanics(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWithShards(%d): expected panic", n)
				}
			}()
			NewWithShards[int](n)
		}()
	}
}

func BenchmarkPut(b *testing.B) {
	m := New[uint64]()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(uint64(i), uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	m := New[uint64]()
	const n = 1 << 16
	for i := uint64(0); i < n; i++ {
		m.Put(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(uint64(i) & (n - 1))
	}
}

func BenchmarkConcurrentGet(b *testing.B) {
	m := New[uint64]()
	const n = 1 << 16
	for i := uint64(0); i < n; i++ {
		m.Put(i, i)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			m.Get(i & (n - 1))
			i++
		}
	})
}
