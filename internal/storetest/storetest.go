// Package storetest provides a conformance suite run against every
// TopologyStore backend (PlatoD2GL, PlatoGL, AliGraph): identical dynamic
// semantics are a precondition for the paper's cross-system benchmarks to be
// meaningful.
package storetest

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"platod2gl/internal/graph"
	"platod2gl/internal/storage"
)

// Factory builds a fresh empty store.
type Factory func() storage.TopologyStore

// Run executes the full conformance suite against the backend.
func Run(t *testing.T, f Factory) {
	t.Helper()
	t.Run("EmptyStore", func(t *testing.T) { testEmpty(t, f()) })
	t.Run("AddQueryDelete", func(t *testing.T) { testAddQueryDelete(t, f()) })
	t.Run("EdgeTypeIsolation", func(t *testing.T) { testEdgeTypes(t, f()) })
	t.Run("SampleDistribution", func(t *testing.T) { testSampleDistribution(t, f()) })
	t.Run("UniformSampleDistribution", func(t *testing.T) { testUniformDistribution(t, f()) })
	t.Run("BatchEqualsSingles", func(t *testing.T) { testBatchEqualsSingles(t, f(), f()) })
	t.Run("RandomChurn", func(t *testing.T) { testRandomChurn(t, f()) })
	t.Run("MemoryAccounting", func(t *testing.T) { testMemory(t, f()) })
}

func testEmpty(t *testing.T, s storage.TopologyStore) {
	if s.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d", s.NumEdges())
	}
	if s.Degree(1, 0) != 0 {
		t.Fatal("Degree nonzero on empty store")
	}
	if _, ok := s.EdgeWeight(1, 2, 0); ok {
		t.Fatal("EdgeWeight found an edge in empty store")
	}
	if s.DeleteEdge(1, 2, 0) || s.UpdateWeight(1, 2, 0, 1) {
		t.Fatal("mutating absent edge returned true")
	}
	rng := rand.New(rand.NewSource(1))
	if out := s.SampleNeighbors(1, 0, 5, rng, nil); len(out) != 0 {
		t.Fatalf("sampled from empty store: %v", out)
	}
	if srcs := s.Sources(0); len(srcs) != 0 {
		t.Fatalf("Sources = %v", srcs)
	}
}

func testAddQueryDelete(t *testing.T, s storage.TopologyStore) {
	if !s.AddEdge(graph.Edge{Src: 1, Dst: 2, Weight: 0.5}) {
		t.Fatal("AddEdge new returned false")
	}
	if s.AddEdge(graph.Edge{Src: 1, Dst: 2, Weight: 0.9}) {
		t.Fatal("AddEdge existing returned true")
	}
	if w, ok := s.EdgeWeight(1, 2, 0); !ok || math.Abs(w-0.9) > 1e-12 {
		t.Fatalf("EdgeWeight = %v,%v want 0.9", w, ok)
	}
	if !s.UpdateWeight(1, 2, 0, 1.5) {
		t.Fatal("UpdateWeight failed")
	}
	if w, _ := s.EdgeWeight(1, 2, 0); math.Abs(w-1.5) > 1e-12 {
		t.Fatalf("weight after update = %v", w)
	}
	if s.Degree(1, 0) != 1 || s.NumEdges() != 1 {
		t.Fatalf("degree=%d edges=%d", s.Degree(1, 0), s.NumEdges())
	}
	if !s.DeleteEdge(1, 2, 0) || s.DeleteEdge(1, 2, 0) {
		t.Fatal("delete semantics broken")
	}
	if s.NumEdges() != 0 || s.Degree(1, 0) != 0 {
		t.Fatalf("after delete: edges=%d degree=%d", s.NumEdges(), s.Degree(1, 0))
	}
}

func testEdgeTypes(t *testing.T, s storage.TopologyStore) {
	s.AddEdge(graph.Edge{Src: 1, Dst: 2, Type: 0, Weight: 1})
	s.AddEdge(graph.Edge{Src: 1, Dst: 3, Type: 1, Weight: 1})
	if s.Degree(1, 0) != 1 || s.Degree(1, 1) != 1 {
		t.Fatal("relations not isolated")
	}
	ids, _ := s.Neighbors(1, 1)
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("Neighbors(1,1) = %v", ids)
	}
	if !s.DeleteEdge(1, 3, 1) {
		t.Fatal("delete in relation 1 failed")
	}
	if s.Degree(1, 0) != 1 {
		t.Fatal("delete leaked across relations")
	}
}

func testSampleDistribution(t *testing.T, s storage.TopologyStore) {
	weights := map[graph.VertexID]float64{10: 1, 20: 2, 30: 3, 40: 4}
	total := 0.0
	for dst, w := range weights {
		s.AddEdge(graph.Edge{Src: 5, Dst: dst, Weight: w})
		total += w
	}
	rng := rand.New(rand.NewSource(42))
	const trials = 100000
	counts := map[graph.VertexID]int{}
	out := s.SampleNeighbors(5, 0, trials, rng, nil)
	if len(out) != trials {
		t.Fatalf("sampled %d, want %d", len(out), trials)
	}
	for _, id := range out {
		counts[id]++
	}
	chi2 := 0.0
	for id, w := range weights {
		expected := float64(trials) * w / total
		d := float64(counts[id]) - expected
		chi2 += d * d / expected
	}
	if chi2 > 16.27 { // 3 dof, p=0.001
		t.Fatalf("chi-square = %v, counts = %v", chi2, counts)
	}
}

func testUniformDistribution(t *testing.T, s storage.TopologyStore) {
	// Uniform sampling must ignore weights entirely.
	for i, w := range []float64{100, 1, 50, 1} {
		s.AddEdge(graph.Edge{Src: 9, Dst: graph.VertexID(10 + i), Weight: w})
	}
	rng := rand.New(rand.NewSource(13))
	const trials = 80000
	counts := map[graph.VertexID]int{}
	out := s.SampleNeighborsUniform(9, 0, trials, rng, nil)
	if len(out) != trials {
		t.Fatalf("sampled %d, want %d", len(out), trials)
	}
	for _, id := range out {
		counts[id]++
	}
	expected := float64(trials) / 4
	chi2 := 0.0
	for i := 0; i < 4; i++ {
		d := float64(counts[graph.VertexID(10+i)]) - expected
		chi2 += d * d / expected
	}
	if chi2 > 16.27 { // 3 dof, p=0.001
		t.Fatalf("chi-square = %v, counts = %v", chi2, counts)
	}
	if got := s.SampleNeighborsUniform(12345, 0, 3, rng, nil); len(got) != 0 {
		t.Fatalf("uniform sample from unknown source: %v", got)
	}
}

func testBatchEqualsSingles(t *testing.T, batched, serial storage.TopologyStore) {
	rng := rand.New(rand.NewSource(9))
	var events []graph.Event
	for i := 0; i < 20000; i++ {
		kind := graph.AddEdge
		switch {
		case i > 500 && rng.Intn(8) == 0:
			kind = graph.DeleteEdge
		case i > 500 && rng.Intn(8) == 1:
			kind = graph.UpdateWeight
		}
		events = append(events, graph.Event{
			Kind: kind,
			Edge: graph.Edge{
				Src:    graph.VertexID(rng.Intn(200)),
				Dst:    graph.VertexID(rng.Intn(1500)),
				Type:   graph.EdgeType(rng.Intn(2)),
				Weight: float64(rng.Intn(100)) + 1,
			},
			Timestamp: int64(i),
		})
	}
	cp := make([]graph.Event, len(events))
	copy(cp, events)
	batched.ApplyBatch(cp)
	for _, ev := range events {
		switch ev.Kind {
		case graph.AddEdge:
			serial.AddEdge(ev.Edge)
		case graph.DeleteEdge:
			serial.DeleteEdge(ev.Edge.Src, ev.Edge.Dst, ev.Edge.Type)
		case graph.UpdateWeight:
			serial.UpdateWeight(ev.Edge.Src, ev.Edge.Dst, ev.Edge.Type, ev.Edge.Weight)
		}
	}
	if batched.NumEdges() != serial.NumEdges() {
		t.Fatalf("edge counts diverge: batch=%d serial=%d", batched.NumEdges(), serial.NumEdges())
	}
	for et := graph.EdgeType(0); et < 2; et++ {
		srcs := serial.Sources(et)
		sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		bsrcs := batched.Sources(et)
		if len(bsrcs) < len(srcs) {
			t.Fatalf("et %d: batched has %d sources, serial %d", et, len(bsrcs), len(srcs))
		}
		for _, src := range srcs {
			si, sw := serial.Neighbors(src, et)
			bi, bw := batched.Neighbors(src, et)
			if len(si) != len(bi) {
				t.Fatalf("src %v et %d: %d vs %d neighbors", src, et, len(bi), len(si))
			}
			bm := map[graph.VertexID]float64{}
			for i, id := range bi {
				bm[id] = bw[i]
			}
			for i, id := range si {
				got, ok := bm[id]
				if !ok || math.Abs(got-sw[i]) > 1e-9 {
					t.Fatalf("src %v dst %v: batch %v (present=%v) vs serial %v", src, id, got, ok, sw[i])
				}
			}
		}
	}
}

func testRandomChurn(t *testing.T, s storage.TopologyStore) {
	rng := rand.New(rand.NewSource(101))
	type key struct {
		src, dst graph.VertexID
	}
	ref := map[key]float64{}
	keysOf := func() []key {
		out := make([]key, 0, len(ref))
		for k := range ref {
			out = append(out, k)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].src != out[j].src {
				return out[i].src < out[j].src
			}
			return out[i].dst < out[j].dst
		})
		return out
	}
	for step := 0; step < 6000; step++ {
		switch op := rng.Intn(10); {
		case op < 6 || len(ref) == 0:
			k := key{graph.VertexID(rng.Intn(50)), graph.VertexID(rng.Intn(400))}
			w := float64(rng.Intn(50)) + 1
			_, existed := ref[k]
			if got := s.AddEdge(graph.Edge{Src: k.src, Dst: k.dst, Weight: w}); got == existed {
				t.Fatalf("step %d: AddEdge new=%v want %v", step, got, !existed)
			}
			ref[k] = w
		case op < 8:
			ks := keysOf()
			k := ks[rng.Intn(len(ks))]
			if !s.DeleteEdge(k.src, k.dst, 0) {
				t.Fatalf("step %d: DeleteEdge(%v,%v) failed", step, k.src, k.dst)
			}
			delete(ref, k)
		default:
			ks := keysOf()
			k := ks[rng.Intn(len(ks))]
			w := float64(rng.Intn(50)) + 1
			if !s.UpdateWeight(k.src, k.dst, 0, w) {
				t.Fatalf("step %d: UpdateWeight failed", step)
			}
			ref[k] = w
		}
		if step%499 == 0 {
			if int(s.NumEdges()) != len(ref) {
				t.Fatalf("step %d: NumEdges=%d want %d", step, s.NumEdges(), len(ref))
			}
			for k, w := range ref {
				got, ok := s.EdgeWeight(k.src, k.dst, 0)
				if !ok || math.Abs(got-w) > 1e-9 {
					t.Fatalf("step %d: weight(%v,%v)=%v,%v want %v", step, k.src, k.dst, got, ok, w)
				}
			}
		}
	}
}

func testMemory(t *testing.T, s storage.TopologyStore) {
	before := s.MemoryBytes()
	for i := 0; i < 5000; i++ {
		s.AddEdge(graph.Edge{
			Src:    graph.VertexID(i % 100),
			Dst:    graph.MakeVertexID(1, uint64(i)),
			Weight: 1,
		})
	}
	after := s.MemoryBytes()
	if after <= before {
		t.Fatalf("MemoryBytes did not grow: %d -> %d", before, after)
	}
	// Sanity floor: at least 8 bytes per stored edge.
	if after-before < 5000*8 {
		t.Fatalf("MemoryBytes delta %d implausibly small", after-before)
	}
}
