package eventlog

import (
	"os"
	"path/filepath"
	"testing"

	"platod2gl/internal/graph"
	"platod2gl/internal/storage"
)

func mkEvents(base uint64, n int) []graph.Event {
	out := make([]graph.Event, n)
	for i := range out {
		out[i] = graph.Event{
			Kind:      graph.AddEdge,
			Edge:      graph.Edge{Src: graph.VertexID(base), Dst: graph.VertexID(base*1000 + uint64(i)), Weight: 1},
			Timestamp: int64(i),
		}
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		seq, err := w.Append(mkEvents(i, 10))
		if err != nil {
			t.Fatal(err)
		}
		if seq != i {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var batches int
	var total int
	n, err := Replay(path, func(seq uint64, events []graph.Event) error {
		batches++
		total += len(events)
		if seq != uint64(batches) {
			t.Fatalf("seq %d at batch %d", seq, batches)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || batches != 5 || total != 50 {
		t.Fatalf("replayed %d batches (%d events)", batches, total)
	}
}

func TestAppendAfterReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(mkEvents(1, 3))
	w.Close()

	w2, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w2.Append(mkEvents(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("resumed seq = %d, want 2", seq)
	}
	w2.Close()

	n, err := Replay(path, func(uint64, []graph.Event) error { return nil })
	if err != nil || n != 2 {
		t.Fatalf("replayed %d, err %v", n, err)
	}
}

func TestTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(mkEvents(1, 20))
	w.Append(mkEvents(2, 20))
	w.Close()
	// Truncate mid-record to simulate a crash during append.
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-25); err != nil {
		t.Fatal(err)
	}
	n, err := Replay(path, func(uint64, []graph.Event) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d complete batches, want 1", n)
	}
	// Reopen-for-append after the torn tail resumes from the last complete
	// record.
	w2, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Seq() != 1 {
		t.Fatalf("resumed seq = %d, want 1", w2.Seq())
	}
}

func TestReplayGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	os.WriteFile(path, []byte("not a log"), 0o644)
	if _, err := Replay(path, func(uint64, []graph.Event) error { return nil }); err == nil {
		t.Fatal("expected error on garbage")
	}
	if _, err := Replay(filepath.Join(t.TempDir(), "missing"), nil); err == nil {
		t.Fatal("expected error on missing file")
	}
}

func TestClosedWriterErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := Create(path)
	w.Close()
	if _, err := w.Append(nil); err == nil {
		t.Fatal("Append on closed writer succeeded")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("Sync on closed writer succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestRecoveryRecipe(t *testing.T) {
	// The full recipe: snapshot + WAL tail replay reconstructs the store.
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wal.log")
	snapPath := filepath.Join(dir, "snap.bin")

	live := storage.NewDynamicStore(storage.Options{})
	wal, err := Create(walPath)
	if err != nil {
		t.Fatal(err)
	}
	apply := func(events []graph.Event) {
		if _, err := wal.Append(events); err != nil {
			t.Fatal(err)
		}
		live.ApplyBatch(events)
	}
	apply(mkEvents(1, 50))
	apply(mkEvents(2, 50))

	// Snapshot, then more traffic after the snapshot point.
	sf, _ := os.Create(snapPath)
	if err := live.Save(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	snapSeq := wal.Seq()
	apply(mkEvents(3, 50))
	wal.Close()

	// Recover: load snapshot, replay the WAL tail beyond snapSeq.
	recovered := storage.NewDynamicStore(storage.Options{})
	rf, _ := os.Open(snapPath)
	if err := recovered.Load(rf); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	if _, err := Replay(walPath, func(seq uint64, events []graph.Event) error {
		if seq > snapSeq {
			recovered.ApplyBatch(events)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if recovered.NumEdges() != live.NumEdges() {
		t.Fatalf("recovered %d edges, want %d", recovered.NumEdges(), live.NumEdges())
	}
	for _, src := range live.Sources(0) {
		if recovered.Degree(src, 0) != live.Degree(src, 0) {
			t.Fatalf("degree mismatch for %v", src)
		}
	}
}

func TestReadTailBasics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := uint64(1); i <= 6; i++ {
		if _, err := w.AppendBatch(9, i, mkEvents(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Tail past a prefix, with and without a limit.
	recs, err := ReadTail(path, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[0].Seq != 3 || recs[3].Seq != 6 {
		t.Fatalf("ReadTail(2) = %d records, first seq %d", len(recs), recs[0].Seq)
	}
	if recs[0].ClientID != 9 || recs[0].ClientSeq != 3 {
		t.Fatalf("tail record lost its identity: %+v", recs[0])
	}
	recs, err = ReadTail(path, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Seq != 4 {
		t.Fatalf("limited tail = %+v", recs)
	}
	// Fully drained tail is empty, not an error.
	recs, err = ReadTail(path, 6, 0)
	if err != nil || len(recs) != 0 {
		t.Fatalf("drained tail: %d records, err %v", len(recs), err)
	}
}

// TestReadTailConcurrentAppend streams a WAL that a writer is appending to
// at the same time — exactly what replica catch-up does against a live
// peer's log. Every record must be observed exactly once, in order, and no
// ReadTail call may error or see a partial record.
func TestReadTailConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const total = 400
	done := make(chan error, 1)
	go func() {
		for i := uint64(1); i <= total; i++ {
			if _, err := w.AppendBatch(1, i, mkEvents(i, 3)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	var after uint64
	var seen int
	for seen < total {
		recs, err := ReadTail(path, after, 32)
		if err != nil {
			t.Fatalf("tail after %d: %v", after, err)
		}
		for _, rec := range recs {
			if rec.Seq != after+1 {
				t.Fatalf("tail skipped: got seq %d after %d", rec.Seq, after)
			}
			if rec.ClientSeq != rec.Seq || len(rec.Events) != 3 {
				t.Fatalf("record %d corrupted mid-stream: %+v", rec.Seq, rec)
			}
			after = rec.Seq
			seen++
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	w.Close()
	if seen != total {
		t.Fatalf("streamed %d records, want %d", seen, total)
	}
}

// TestReadTailTornFrameMidStream: a torn frame in the middle of the live
// log (a frame the writer has not finished) must end the tail cleanly at
// the last complete record; once the frame is completed the next ReadTail
// picks it up.
func TestReadTailTornFrameMidStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendBatch(1, 1, mkEvents(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendBatch(1, 2, mkEvents(2, 2)); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Simulate an in-progress append: keep the complete prefix, re-append
	// only part of record 2's frame (length prefix + truncated payload).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTail(path, 0, 0)
	if err != nil || len(recs) != 2 {
		t.Fatalf("full log: %d records, err %v", len(recs), err)
	}
	fi, _ := os.Stat(path)
	torn := fi.Size() - 10
	if err := os.Truncate(path, torn); err != nil {
		t.Fatal(err)
	}

	recs, err = ReadTail(path, 0, 0)
	if err != nil {
		t.Fatalf("torn mid-stream tail errored: %v", err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("torn tail = %d records (first seq %v), want just record 1", len(recs), recs)
	}

	// Writer finishes the frame: the previously torn record becomes visible.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(raw[torn:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err = ReadTail(path, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 2 || recs[0].ClientSeq != 2 {
		t.Fatalf("completed frame not picked up: %+v", recs)
	}
}

func TestAppendBatchIdentityRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendBatch(42, 7, mkEvents(1, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(mkEvents(2, 2)); err != nil { // no identity
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var recs []BatchRecord
	n, err := ReplayBatches(path, func(rec BatchRecord) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil || n != 2 {
		t.Fatalf("replayed %d, err %v", n, err)
	}
	if recs[0].ClientID != 42 || recs[0].ClientSeq != 7 || len(recs[0].Events) != 3 {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].ClientID != 0 || recs[1].ClientSeq != 0 {
		t.Fatalf("record 1 carries a spurious identity: %+v", recs[1])
	}
}

// TestResetTruncatesAtomically: after Reset the log is empty (header only),
// the sequence restarts, and the writer keeps appending to the new file —
// the snapshot-barrier contract that prevents double replay.
func TestResetTruncatesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if _, err := w.Append(mkEvents(i, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(len(headerV2)) {
		t.Fatalf("post-reset size = %v (err %v), want bare header", fi.Size(), err)
	}
	if n, err := Replay(path, func(uint64, []graph.Event) error { return nil }); err != nil || n != 0 {
		t.Fatalf("post-reset replay: %d batches, err %v", n, err)
	}
	// The writer stays usable: sequence restarts and new appends land in
	// the fresh file.
	seq, err := w.Append(mkEvents(9, 2))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("post-reset seq = %d, want 1", seq)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got int
	if _, err := Replay(path, func(_ uint64, events []graph.Event) error {
		got += len(events)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("post-reset replay saw %d events, want 2", got)
	}
}

// TestResetTwiceKeepsCanonicalPath is the double-reset regression: the
// writer's fd is the file that was created at "<path>.reset" and renamed
// into place, so a path derived from f.Name() goes stale after the first
// Reset. A second Reset must still truncate the log at its canonical path —
// not swap a fresh file in beside it — and appends must keep landing in the
// real log, with no ".reset" orphan accumulating frames.
func TestResetTwiceKeepsCanonicalPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 3; cycle++ {
		for i := uint64(1); i <= 2; i++ {
			if _, err := w.Append(mkEvents(i, 4)); err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
		}
		if err := w.Reset(); err != nil {
			t.Fatalf("cycle %d reset: %v", cycle, err)
		}
		if got := w.Path(); got != path {
			t.Fatalf("cycle %d: Path() = %q, want %q", cycle, got, path)
		}
		if fi, err := os.Stat(path); err != nil || fi.Size() != int64(len(headerV2)) {
			t.Fatalf("cycle %d: post-reset size = %v (err %v), want bare header", cycle, fi.Size(), err)
		}
		if _, err := os.Stat(path + ".reset"); !os.IsNotExist(err) {
			t.Fatalf("cycle %d: orphan %s.reset left behind (err %v)", cycle, path, err)
		}
	}
	// Appends after the final reset must land in the canonical file.
	if _, err := w.Append(mkEvents(9, 3)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got int
	if _, err := Replay(path, func(_ uint64, events []graph.Event) error {
		got += len(events)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("replay after double reset saw %d events, want 3", got)
	}
}
