// Package eventlog implements an append-only write-ahead log of graph
// update events. A graph server combines it with snapshots (internal/storage)
// for durability: periodically snapshot the store, truncate the log, and on
// restart load the snapshot then replay the log tail — the standard
// recovery recipe for in-memory stores serving a live update stream.
//
// Wire format: a text header line, then length-framed records — 4-byte
// big-endian payload length followed by a self-contained gob encoding of the
// record. Framing (rather than one long gob stream) keeps the file
// appendable across process restarts and makes torn tails (a crash mid
// append) detectable: replay stops at the first incomplete frame.
//
// Version 2 files additionally carry a CRC-32C checksum per frame (4 bytes
// between the length prefix and the payload), so silent on-disk corruption —
// a bit flip inside an otherwise complete frame — is detected rather than
// fed to gob and (worse) possibly decoded into wrong events. New files are
// written as v2; v1 files remain readable and are appended in v1 format so a
// version upgrade never mixes frame layouts within one file. Verify reports
// a file's integrity, distinguishing an expected torn tail from mid-file
// corruption.
package eventlog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"platod2gl/internal/graph"
)

// Header lines. Both are the same length, so frame offsets are comparable
// across versions.
const (
	headerV1 = "platod2gl-eventlog v1\n"
	headerV2 = "platod2gl-eventlog v2\n"
)

// crcTable is the Castagnoli polynomial — hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxFrame bounds a single record's encoded size (a corrupt length prefix
// must not trigger a huge allocation).
const maxFrame = 1 << 30

type logRecord struct {
	Seq    uint64
	Events []graph.Event
	// ClientID/ClientSeq carry the cluster batch's at-most-once identity
	// (zero for batches without one). Persisting them lets a restarted
	// server rebuild its dedup table, so a client retry that straddles the
	// restart is still applied at most once. Gob tolerates their absence in
	// logs written before these fields existed.
	ClientID  uint64
	ClientSeq uint64
}

// BatchRecord is one replayed WAL record with its dedup identity.
type BatchRecord struct {
	Seq       uint64 // log sequence number
	ClientID  uint64 // cluster client identity (0 = none)
	ClientSeq uint64 // client batch sequence (0 = none)
	Events    []graph.Event
}

// Writer appends event batches to a log file.
type Writer struct {
	mu      sync.Mutex
	f       *os.File
	path    string // canonical log path; f.Name() goes stale after Reset's rename
	seq     uint64
	open    bool
	version int // frame format of the underlying file (1 or 2)
}

// Create opens (or creates) the log at path for appending. A new file gets
// the current (v2, CRC-framed) header; an existing file is validated, its
// tail sequence recovered, its frame version remembered so appends match,
// and any torn final frame truncated away.
func Create(path string) (*Writer, error) {
	fi, err := os.Stat(path)
	fresh := errors.Is(err, os.ErrNotExist) || (err == nil && fi.Size() == 0)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("eventlog: stat %s: %w", path, err)
	}
	version := 2
	var lastSeq uint64
	var goodSize int64
	if !fresh {
		var res scanResult
		res, err = scanFull(path, nil)
		if err != nil {
			return nil, err
		}
		version, lastSeq, goodSize = res.version, res.lastSeq, res.goodSize
		if fi.Size() > goodSize {
			// Torn tail from a crash mid-append: drop it before appending.
			if err := os.Truncate(path, goodSize); err != nil {
				return nil, fmt.Errorf("eventlog: truncate torn tail: %w", err)
			}
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("eventlog: open %s: %w", path, err)
	}
	w := &Writer{f: f, path: path, seq: lastSeq, open: true, version: version}
	if fresh {
		if _, err := f.WriteString(headerV2); err != nil {
			f.Close()
			return nil, fmt.Errorf("eventlog: write header: %w", err)
		}
	}
	return w, nil
}

// stopCause classifies why a scan stopped before the file's end.
type stopCause int

const (
	stopEOF      stopCause = iota // clean end of file
	stopTorn                      // incomplete final frame (crash mid-append)
	stopCorrupt                   // complete frame failed CRC or decode
	stopCallback                  // the per-record callback returned an error
)

// scanResult summarizes one pass over a log file.
type scanResult struct {
	version  int
	frames   int
	lastSeq  uint64
	goodSize int64 // end offset of the last valid frame
	cause    stopCause
}

// scan validates the log, invoking fn (if non-nil) per complete record, and
// returns the last sequence number plus the byte offset of the end of the
// last complete frame. Replay stops silently at the first torn or corrupt
// frame — Verify exposes the distinction to callers that need it.
func scan(path string, fn func(rec BatchRecord) error) (uint64, int64, error) {
	res, err := scanFull(path, fn)
	return res.lastSeq, res.goodSize, err
}

// scanFull is scan with the stop cause and frame version exposed.
func scanFull(path string, fn func(rec BatchRecord) error) (scanResult, error) {
	var res scanResult
	f, err := os.Open(path)
	if err != nil {
		return res, fmt.Errorf("eventlog: open %s: %w", path, err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head := make([]byte, len(headerV1))
	if _, err := io.ReadFull(br, head); err != nil {
		return res, fmt.Errorf("eventlog: %s is not an event log", path)
	}
	switch string(head) {
	case headerV1:
		res.version = 1
	case headerV2:
		res.version = 2
	default:
		return res, fmt.Errorf("eventlog: %s is not an event log", path)
	}
	res.goodSize = int64(len(headerV1))
	frameOverhead := int64(4)
	if res.version >= 2 {
		frameOverhead = 8 // length + CRC
	}
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			if errors.Is(err, io.EOF) {
				res.cause = stopEOF
			} else {
				res.cause = stopTorn // partial length prefix
			}
			return res, nil
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			// A fully written length prefix with an impossible value is
			// corruption, not a torn append.
			res.cause = stopCorrupt
			return res, nil
		}
		var wantCRC uint32
		if res.version >= 2 {
			var crcBuf [4]byte
			if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
				res.cause = stopTorn
				return res, nil
			}
			wantCRC = binary.BigEndian.Uint32(crcBuf[:])
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			res.cause = stopTorn
			return res, nil
		}
		if res.version >= 2 && crc32.Checksum(payload, crcTable) != wantCRC {
			res.cause = stopCorrupt
			return res, nil
		}
		var rec logRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			res.cause = stopCorrupt
			return res, nil
		}
		if fn != nil {
			br := BatchRecord{Seq: rec.Seq, ClientID: rec.ClientID, ClientSeq: rec.ClientSeq, Events: rec.Events}
			if err := fn(br); err != nil {
				res.cause = stopCallback
				return res, err
			}
		}
		res.frames++
		res.lastSeq = rec.Seq
		res.goodSize += frameOverhead + int64(n)
	}
}

// Append writes one event batch and flushes it to the OS. Returns the
// record's sequence number.
func (w *Writer) Append(events []graph.Event) (uint64, error) {
	return w.AppendBatch(0, 0, events)
}

// AppendBatch writes one event batch stamped with its cluster at-most-once
// identity (clientID, clientSeq); zeros mean "no identity". Returns the
// record's log sequence number.
func (w *Writer) AppendBatch(clientID, clientSeq uint64, events []graph.Event) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.open {
		return 0, errors.New("eventlog: writer closed")
	}
	var payload bytes.Buffer
	rec := logRecord{Seq: w.seq + 1, Events: events, ClientID: clientID, ClientSeq: clientSeq}
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return 0, fmt.Errorf("eventlog: encode: %w", err)
	}
	var frame bytes.Buffer
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(payload.Len()))
	frame.Write(lenBuf[:])
	if w.version >= 2 {
		var crcBuf [4]byte
		binary.BigEndian.PutUint32(crcBuf[:], crc32.Checksum(payload.Bytes(), crcTable))
		frame.Write(crcBuf[:])
	}
	frame.Write(payload.Bytes())
	// One Write call per frame keeps appends atomic with respect to
	// concurrent Writers on POSIX O_APPEND semantics.
	if _, err := w.f.Write(frame.Bytes()); err != nil {
		return 0, fmt.Errorf("eventlog: append: %w", err)
	}
	w.seq++
	return w.seq, nil
}

// Sync forces written records to stable media.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.open {
		return errors.New("eventlog: writer closed")
	}
	return w.f.Sync()
}

// Seq returns the last appended sequence number.
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Close closes the log.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.open {
		return nil
	}
	w.open = false
	return w.f.Close()
}

// Replay streams every complete batch in the log at path (in append order)
// to fn, stopping early if fn errors. A torn final frame is skipped
// silently. Returns the number of batches replayed.
func Replay(path string, fn func(seq uint64, events []graph.Event) error) (int, error) {
	return ReplayBatches(path, func(rec BatchRecord) error {
		return fn(rec.Seq, rec.Events)
	})
}

// ReplayBatches is Replay with full records, including each batch's cluster
// at-most-once identity — what a recovering server uses to rebuild its
// dedup table alongside its topology.
func ReplayBatches(path string, fn func(rec BatchRecord) error) (int, error) {
	n := 0
	_, _, err := scan(path, func(rec BatchRecord) error {
		if err := fn(rec); err != nil {
			return err
		}
		n++
		return nil
	})
	return n, err
}

// errStopScan aborts a scan early from inside the per-record callback
// without reporting an error to the caller.
var errStopScan = errors.New("eventlog: stop scan")

// ReadTail returns up to limit complete records with Seq > afterSeq, in
// append order (limit <= 0 means unlimited). It is safe against a writer
// concurrently appending to the same file: a torn frame mid-stream (a frame
// whose length prefix or payload is still being written) ends the read
// cleanly at the last complete record, and a later call picks up the frame
// once the writer finishes it. This is the replica catch-up primitive: a
// rejoining replica repeatedly tails a live peer's WAL until it has drained
// everything past the snapshot it loaded.
//
// Each call rescans the file from the start (the frame format carries no
// index); callers stream in chunks via limit, which keeps per-call payloads
// bounded while the O(file) rescan stays cheap at WAL sizes bounded by the
// snapshot/truncate cycle.
func ReadTail(path string, afterSeq uint64, limit int) ([]BatchRecord, error) {
	var out []BatchRecord
	_, _, err := scan(path, func(rec BatchRecord) error {
		if rec.Seq <= afterSeq {
			return nil
		}
		out = append(out, rec)
		if limit > 0 && len(out) >= limit {
			return errStopScan
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopScan) {
		return nil, err
	}
	return out, nil
}

// Path returns the log file's path.
func (w *Writer) Path() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.path
}

// Reset atomically truncates the log to an empty file (header only) and
// resets the sequence counter. It is the snapshot-barrier primitive: after
// a snapshot captures the store, Reset guarantees a restart will not replay
// batches the snapshot already contains (re-applying deletes of re-added
// edges is not idempotent). The fresh file is created beside the log and
// renamed over it, so a crash during Reset leaves either the old complete
// log or the new empty one — never a torn file.
func (w *Writer) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.open {
		return errors.New("eventlog: writer closed")
	}
	// The canonical path, NOT w.f.Name(): after a previous Reset, w.f is the
	// file that was created at the tmp path and renamed into place, so its
	// Name() still reports "<path>.reset" — resetting by that name would
	// swap the fresh file in beside the log instead of over it, and every
	// append after that would land in the orphan.
	path := w.path
	tmp := path + ".reset"
	nf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("eventlog: reset: %w", err)
	}
	// A reset file is fresh, so it always upgrades to the current format.
	if _, err := nf.WriteString(headerV2); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("eventlog: reset header: %w", err)
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("eventlog: reset sync: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("eventlog: reset rename: %w", err)
	}
	old := w.f
	w.f = nf
	w.seq = 0
	w.version = 2
	old.Close()
	return nil
}

// VerifyReport is the result of an offline integrity pass over a log file.
type VerifyReport struct {
	Version  int    // frame format (1 = no per-frame CRC, 2 = CRC-32C framed)
	Frames   int    // complete, valid frames
	LastSeq  uint64 // sequence number of the last valid frame
	GoodSize int64  // byte offset of the end of the last valid frame
	// TornTail is true when the file ends with an incomplete frame — the
	// expected residue of a crash mid-append, repaired automatically by the
	// next Create.
	TornTail bool
	// Corrupt is true when a complete frame failed its CRC (v2) or decode:
	// on-disk corruption, not a torn append. BadOffset is where the bad
	// frame starts.
	Corrupt   bool
	BadOffset int64
}

// Err returns a non-nil error iff the report found corruption. A torn tail
// is not an error (Create truncates it away).
func (r VerifyReport) Err() error {
	if r.Corrupt {
		return fmt.Errorf("eventlog: corrupt frame at offset %d (after %d valid frames, seq %d)",
			r.BadOffset, r.Frames, r.LastSeq)
	}
	return nil
}

// Verify walks the log at path checking every frame (length bounds, CRC-32C
// on v2 files, gob decodability) without applying anything, and classifies
// any early stop: a torn final frame is expected crash residue, while a
// complete frame that fails verification is corruption that a scrubber
// should repair from a peer. Safe to run against a live writer's file —
// concurrent appends read as a torn tail at worst.
func Verify(path string) (VerifyReport, error) {
	res, err := scanFull(path, nil)
	if err != nil {
		return VerifyReport{}, err
	}
	rep := VerifyReport{
		Version:  res.version,
		Frames:   res.frames,
		LastSeq:  res.lastSeq,
		GoodSize: res.goodSize,
	}
	switch res.cause {
	case stopTorn:
		rep.TornTail = true
	case stopCorrupt:
		rep.Corrupt = true
		rep.BadOffset = res.goodSize
	}
	return rep, nil
}
