package eventlog

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"platod2gl/internal/graph"
)

// writeLog creates a log with n batches of 4 events each and closes it.
func writeLog(t *testing.T, path string, n int) {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if _, err := w.AppendBatch(uint64(i), uint64(i), mkEvents(uint64(i), 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// frameOffsets scans a v2 file and returns the start offset of each frame.
func frameOffsets(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:len(headerV2)]) != headerV2 {
		t.Fatalf("not a v2 log")
	}
	var offs []int64
	off := int64(len(headerV2))
	for off < int64(len(data)) {
		offs = append(offs, off)
		n := binary.BigEndian.Uint32(data[off:])
		off += 8 + int64(n)
	}
	return offs
}

// TestReadTailStopsAtBitFlippedFrame flips one payload bit in the middle
// frame of a five-frame log: ReadTail must return only the records before
// the corrupt frame (detect + stop at last good frame), and Verify must
// classify the file as corrupt with the bad frame's offset.
func TestReadTailStopsAtBitFlippedFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	writeLog(t, path, 5)
	offs := frameOffsets(t, path)
	if len(offs) != 5 {
		t.Fatalf("got %d frames, want 5", len(offs))
	}

	// Flip one bit inside frame 3's payload (offset +8 skips len+CRC).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offs[2]+8+3] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadTail(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("ReadTail returned %d records after bit flip, want 2 (stop at last good frame)", len(recs))
	}
	if recs[len(recs)-1].Seq != 2 {
		t.Fatalf("last good seq = %d, want 2", recs[len(recs)-1].Seq)
	}

	rep, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Corrupt || rep.TornTail {
		t.Fatalf("Verify = %+v, want Corrupt=true TornTail=false", rep)
	}
	if rep.BadOffset != offs[2] {
		t.Fatalf("BadOffset = %d, want %d (start of the flipped frame)", rep.BadOffset, offs[2])
	}
	if rep.Frames != 2 || rep.LastSeq != 2 {
		t.Fatalf("Verify frames=%d lastSeq=%d, want 2/2", rep.Frames, rep.LastSeq)
	}
	if rep.Err() == nil {
		t.Fatal("Err() = nil for a corrupt file")
	}
}

// TestVerifyTornTailIsNotCorruption truncates the file mid-frame: Verify
// reports a torn tail (expected crash residue), not corruption, and Err()
// stays nil. A clean file reports neither.
func TestVerifyTornTailIsNotCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	writeLog(t, path, 3)

	rep, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt || rep.TornTail || rep.Frames != 3 || rep.Err() != nil {
		t.Fatalf("clean file: Verify = %+v", rep)
	}

	offs := frameOffsets(t, path)
	// Cut inside the last frame's payload.
	if err := os.Truncate(path, offs[2]+10); err != nil {
		t.Fatal(err)
	}
	rep, err = Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornTail || rep.Corrupt {
		t.Fatalf("torn file: Verify = %+v, want TornTail=true Corrupt=false", rep)
	}
	if rep.Frames != 2 || rep.GoodSize != offs[2] {
		t.Fatalf("torn file: frames=%d goodSize=%d, want 2/%d", rep.Frames, rep.GoodSize, offs[2])
	}
	if rep.Err() != nil {
		t.Fatalf("torn tail must not be an error: %v", rep.Err())
	}

	// Create repairs the torn tail and appends cleanly after it.
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(mkEvents(9, 2)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	rep, err = Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt || rep.TornTail || rep.Frames != 3 {
		t.Fatalf("post-repair: Verify = %+v", rep)
	}
}

// writeV1Log hand-writes a version-1 (no CRC) log file.
func writeV1Log(t *testing.T, path string, n int) {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(headerV1)
	for i := 1; i <= n; i++ {
		var payload bytes.Buffer
		rec := logRecord{Seq: uint64(i), Events: mkEvents(uint64(i), 4)}
		if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
			t.Fatal(err)
		}
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], uint32(payload.Len()))
		buf.Write(lenBuf[:])
		buf.Write(payload.Bytes())
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestV1Compatibility: a v1 file replays, appends stay in v1 format (no
// mixed frame layouts within one file), and Reset upgrades it to v2.
func TestV1Compatibility(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	writeV1Log(t, path, 3)

	rep, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 1 || rep.Frames != 3 || rep.Corrupt {
		t.Fatalf("v1 Verify = %+v", rep)
	}

	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Seq() != 3 {
		t.Fatalf("recovered seq = %d, want 3", w.Seq())
	}
	if _, err := w.Append(mkEvents(4, 4)); err != nil {
		t.Fatal(err)
	}
	n, err := Replay(path, func(uint64, []graph.Event) error { return nil })
	if err != nil || n != 4 {
		t.Fatalf("v1 replay after append: %d batches, err %v", n, err)
	}
	if rep, _ := Verify(path); rep.Version != 1 || rep.Frames != 4 {
		t.Fatalf("appended v1 file: Verify = %+v", rep)
	}

	// Reset rewrites the file fresh, which upgrades the format.
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(mkEvents(5, 2)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if rep, _ := Verify(path); rep.Version != 2 || rep.Frames != 1 || rep.Corrupt {
		t.Fatalf("post-reset: Verify = %+v", rep)
	}
}
